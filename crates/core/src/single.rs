//! Gaussian and Gaussian-mixture fits of placement histograms — §IV.A/B.

use std::fmt;

use serde::{Deserialize, Serialize};

use crowdtz_stats::{
    em, em_warm, fit_gaussian, select_components, EmConfig, FitQuality, GaussianComponent,
    GaussianCurve, GaussianMixture, SelectionCriterion, StatsError,
};
use crowdtz_time::TzOffset;

use crate::placement::PlacementHistogram;

/// The σ the paper observed on single-region placements — *"the average
/// Gaussian standard deviation value for all the countries considered is
/// σ ≈ 2.5, and … it corresponds to half of the typical hour with lowest
/// activity, between 4am and 5am local time"* — used to initialize fits.
pub const SIGMA_INIT: f64 = 2.5;

/// The σ *this reproduction* observes on its own single-region placements
/// (Figures 3–5 of the harness fit σ ≈ 1.9–2.1 on the synthetic world).
///
/// The paper's procedure is to plug the empirically observed width into
/// the EM — it measured 2.5 on its Twitter data; we measure ≈ 2.0 on the
/// synthetic twin and use that for mixture components.
pub const SIGMA_COMPONENT: f64 = 2.0;

/// Lower bound on a mixture component's σ when fitting placements.
///
/// Single-region placements spread with σ ≈ 2.5 (chronotype variation), so
/// a genuine regional component can never be much narrower; the floor
/// stops the EM from explaining quantization noise with sliver
/// components.
pub const SIGMA_FLOOR: f64 = 1.5;

/// Components lighter than this mixing weight are considered fitting
/// noise, and the mixture is refitted with one component fewer. With σ
/// held at the known width, spurious sliver components are already rare,
/// so the floor only needs to catch near-empty ones.
const MIN_COMPONENT_WEIGHT: f64 = 0.07;

/// Components whose means are closer than this (in hours) describe the
/// same region and are merged by refitting with one component fewer.
/// With σ fixed at ≈ 2.0, two means closer than 2.5 h (1.25 σ) are not
/// meaningfully distinct zones.
const MIN_COMPONENT_SEPARATION: f64 = 2.5;

/// Snaps a fractional zone coordinate to the nearest canonical offset
/// (UTC−11 … UTC+12), wrapping circularly (−11.7 snaps to UTC+12).
fn snap_zone(mean: f64) -> TzOffset {
    let hours = ((mean.round() as i32 + 11).rem_euclid(24)) - 11;
    TzOffset::from_hours(hours).expect("wrapped into valid range")
}

/// The rotated fitting axis for a `bins`-wide histogram: coordinates in
/// **hours** (`0, 24/bins, …`), so σ constants and means keep hour units
/// on every grid. On the hourly grid the spacing factor is exactly `1.0`,
/// so the axis is bit-identical to the historical `0.0, 1.0, …` one.
fn rotated_axis(bins: usize) -> Vec<f64> {
    let step_hours = 24.0 / bins as f64;
    (0..bins).map(|i| i as f64 * step_hours).collect()
}

/// A single-region geolocation: one Gaussian over the placement histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleRegionFit {
    curve: GaussianCurve,
    quality: FitQuality,
}

impl SingleRegionFit {
    /// Fits a Gaussian (seeded with σ = 2.5) to the placement histogram
    /// and computes the Table II point-by-point quality metric.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures from [`fit_gaussian`].
    pub fn fit(histogram: &PlacementHistogram) -> Result<SingleRegionFit, StatsError> {
        // Zones live on a circle; fit on the axis unrolled at the crowd's
        // emptiest stretch so crowds near UTC±12 are not split in two.
        // The axis is in hours regardless of grid resolution, so every σ
        // constant keeps its meaning on the 48- and 96-zone grids.
        let cut = histogram.wrap_cut();
        let rotated = histogram.rotated_fractions(cut);
        let xs_rot = rotated_axis(rotated.len());
        let fit_rot = fit_gaussian(&xs_rot, &rotated, Some(SIGMA_INIT))?;
        let curve = GaussianCurve::new(
            histogram.unrotate_axis_coord(fit_rot.mean, cut),
            fit_rot.sigma,
            fit_rot.amplitude,
        );
        let fitted = curve.eval_all_wrapped(&histogram.zone_coords(), 24.0);
        let quality = FitQuality::between(&fitted, histogram.fractions())?;
        Ok(SingleRegionFit { curve, quality })
    }

    /// The fitted Gaussian.
    pub fn curve(&self) -> GaussianCurve {
        self.curve
    }

    /// The Table II quality metric (average & std of point distances).
    pub fn quality(&self) -> FitQuality {
        self.quality
    }

    /// The uncovered time zone: the Gaussian mean snapped to the nearest
    /// whole-hour offset. *"The center of the Gaussian will uncover the
    /// timezone of the unknown region."*
    pub fn time_zone(&self) -> TzOffset {
        snap_zone(self.curve.mean)
    }

    /// The Table II baseline for this fit: the fitted curve rotated by 12
    /// zones compared against the data.
    ///
    /// # Errors
    ///
    /// Propagates metric computation failures.
    pub fn baseline(&self, histogram: &PlacementHistogram) -> Result<FitQuality, StatsError> {
        let fitted = self.curve.eval_all_wrapped(&histogram.zone_coords(), 24.0);
        FitQuality::shifted_baseline(&fitted, histogram.fractions(), histogram.bins() / 2)
    }
}

impl fmt::Display for SingleRegionFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ⇒ {} [{}]",
            self.curve,
            self.time_zone(),
            self.quality
        )
    }
}

/// A multi-region geolocation: a Gaussian mixture over the placement
/// histogram, with the component count chosen by information criterion
/// (§IV.B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRegionFit {
    mixture: GaussianMixture,
    quality: FitQuality,
}

impl MultiRegionFit {
    /// Fits mixtures with 1 … `max_components` components by EM (σ held
    /// at the empirically known 2.5, as the paper prescribes) and keeps
    /// the best by AIC, followed by a pruning pass that merges
    /// overlapping components and drops near-empty ones.
    ///
    /// # Errors
    ///
    /// Propagates EM failures (e.g. an empty histogram).
    pub fn fit(
        histogram: &PlacementHistogram,
        max_components: usize,
    ) -> Result<MultiRegionFit, StatsError> {
        // Unroll the circle at the crowd's emptiest stretch (see
        // `SingleRegionFit::fit`), fit on the line, then map means back.
        let cut = histogram.wrap_cut();
        let rotated = histogram.rotated_fractions(cut);
        let users = histogram.users() as f64;
        let counts: Vec<f64> = rotated.iter().map(|f| f * users).collect();
        let xs_rot = rotated_axis(rotated.len());
        let config = Self::em_config();
        let mut mixture = select_components(
            &xs_rot,
            &counts,
            max_components,
            &config,
            SelectionCriterion::Aic,
        )?;
        // Prune implausible components: a region's placement spread is
        // known, so near-duplicate means or sliver weights are fitting
        // noise — refit with fewer components until clean.
        while mixture.len() > 1 && Self::needs_prune(&mixture) {
            mixture = em(&xs_rot, &counts, mixture.len() - 1, &config)?;
        }
        let mixture = mixture.map_means(|m| histogram.unrotate_axis_coord(m, cut));
        let quality = Self::quality_of(&mixture, histogram)?;
        Ok(MultiRegionFit { mixture, quality })
    }

    /// Like [`MultiRegionFit::fit`], but EM is **warm-started** from a
    /// previous fit's components instead of the quantile/peak restarts —
    /// the streaming pipeline's fast path when the placement histogram
    /// moved only slightly between snapshots.
    ///
    /// The previous means (zone coordinates) are re-expressed on the new
    /// histogram's rotated fitting axis, so the warm start is valid even
    /// when the wrap cut moved. The same pruning pass runs afterwards;
    /// when the warm start is unusable (e.g. more components than
    /// populated zones), the cold [`MultiRegionFit::fit`] path runs
    /// instead. Results are *numerically close* to, but not necessarily
    /// bit-identical with, a cold fit — callers that need exactness use
    /// [`MultiRegionFit::fit`].
    ///
    /// # Errors
    ///
    /// Propagates EM failures from the cold fallback.
    pub fn fit_warm(
        histogram: &PlacementHistogram,
        max_components: usize,
        previous: &GaussianMixture,
    ) -> Result<MultiRegionFit, StatsError> {
        if previous.is_empty() {
            return Self::fit(histogram, max_components);
        }
        let cut = histogram.wrap_cut();
        let rotated = histogram.rotated_fractions(cut);
        let users = histogram.users() as f64;
        let counts: Vec<f64> = rotated.iter().map(|f| f * users).collect();
        let xs_rot = rotated_axis(rotated.len());
        let step_hours = 24.0 / rotated.len() as f64;
        let config = Self::em_config();
        let init: Vec<GaussianComponent> = previous
            .components()
            .iter()
            .take(max_components.max(1))
            .map(|c| GaussianComponent {
                weight: c.weight,
                mean: (c.mean + 11.0 - cut as f64 * step_hours).rem_euclid(24.0),
                sigma: c.sigma,
            })
            .collect();
        let mut mixture = match em_warm(&xs_rot, &counts, &init, &config) {
            Ok(m) => m,
            Err(_) => return Self::fit(histogram, max_components),
        };
        while mixture.len() > 1 && Self::needs_prune(&mixture) {
            mixture = em(&xs_rot, &counts, mixture.len() - 1, &config)?;
        }
        let mixture = mixture.map_means(|m| histogram.unrotate_axis_coord(m, cut));
        let quality = Self::quality_of(&mixture, histogram)?;
        Ok(MultiRegionFit { mixture, quality })
    }

    fn em_config() -> EmConfig {
        EmConfig {
            sigma_init: SIGMA_INIT,
            sigma_floor: SIGMA_FLOOR,
            // §IV.B: the width of a genuine regional component is known
            // from single-region placements; holding it fixed lets EM
            // spend its freedom on means and weights only, which stops a
            // heavy region's tail from swallowing a light one.
            fixed_sigma: Some(SIGMA_COMPONENT),
            ..EmConfig::default()
        }
    }

    fn needs_prune(mixture: &GaussianMixture) -> bool {
        let comps = mixture.components();
        let sliver = comps.iter().any(|c| c.weight < MIN_COMPONENT_WEIGHT);
        let overlap = comps.iter().enumerate().any(|(i, a)| {
            comps[i + 1..].iter().any(|b| {
                let d = (a.mean - b.mean).abs();
                d.min(24.0 - d) < MIN_COMPONENT_SEPARATION
            })
        });
        sliver || overlap
    }

    /// Fits a mixture with exactly `k` components.
    ///
    /// # Errors
    ///
    /// Propagates EM failures.
    pub fn fit_k(histogram: &PlacementHistogram, k: usize) -> Result<MultiRegionFit, StatsError> {
        let cut = histogram.wrap_cut();
        let rotated = histogram.rotated_fractions(cut);
        let users = histogram.users() as f64;
        let counts: Vec<f64> = rotated.iter().map(|f| f * users).collect();
        let xs_rot = rotated_axis(rotated.len());
        let config = Self::em_config();
        let mixture =
            em(&xs_rot, &counts, k, &config)?.map_means(|m| histogram.unrotate_axis_coord(m, cut));
        let quality = Self::quality_of(&mixture, histogram)?;
        Ok(MultiRegionFit { mixture, quality })
    }

    fn quality_of(
        mixture: &GaussianMixture,
        histogram: &PlacementHistogram,
    ) -> Result<FitQuality, StatsError> {
        let fitted = mixture.density_all_wrapped(&histogram.zone_coords(), 24.0);
        FitQuality::between(&fitted, histogram.fractions())
    }

    /// The fitted mixture evaluated over the 24 zone coordinates (wrapped
    /// density) — the series plotted against the placement histogram.
    pub fn fitted_series(&self) -> Vec<f64> {
        self.mixture
            .density_all_wrapped(&PlacementHistogram::xs(), 24.0)
    }

    /// The fitted mixture, components sorted by descending weight.
    pub fn mixture(&self) -> &GaussianMixture {
        &self.mixture
    }

    /// The Table II quality metric.
    pub fn quality(&self) -> FitQuality {
        self.quality
    }

    /// The uncovered time zones: each component's mean snapped to the
    /// nearest whole-hour offset, with its mixing weight.
    pub fn time_zones(&self) -> Vec<(TzOffset, f64)> {
        self.mixture
            .components()
            .iter()
            .map(|c| (snap_zone(c.mean), c.weight))
            .collect()
    }
}

impl fmt::Display for MultiRegionFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.mixture, self.quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::UserPlacement;

    /// Builds a placement histogram by sampling a Gaussian over the zones.
    fn gaussian_histogram(mean: f64, sigma: f64, n: usize) -> PlacementHistogram {
        let mut placements = Vec::new();
        let mut count = 0usize;
        for k in -11..=12 {
            let z = (k as f64 - mean) / sigma;
            let weight = (-0.5 * z * z).exp();
            let users = (weight * n as f64).round() as usize;
            for i in 0..users {
                placements.push(
                    serde_json::from_str::<UserPlacement>(&format!(
                        r#"{{"user":"u{count}-{i}","zone_hours":{k},"emd":0.1}}"#
                    ))
                    .unwrap(),
                );
                count += 1;
            }
        }
        PlacementHistogram::from_placements(&placements)
    }

    #[test]
    fn single_fit_recovers_zone() {
        for mean in [-6.0, 0.0, 1.0, 8.0] {
            let hist = gaussian_histogram(mean, 2.5, 100);
            let fit = SingleRegionFit::fit(&hist).unwrap();
            assert!(
                (fit.curve().mean - mean).abs() < 0.3,
                "mean {mean}: {}",
                fit.curve()
            );
            assert_eq!(fit.time_zone().whole_hours(), mean as i32);
            assert!(fit.quality().average < 0.02, "{}", fit.quality());
        }
    }

    #[test]
    fn baseline_is_much_worse() {
        let hist = gaussian_histogram(1.0, 2.5, 200);
        let fit = SingleRegionFit::fit(&hist).unwrap();
        let baseline = fit.baseline(&hist).unwrap();
        assert!(
            baseline.average > fit.quality().average * 3.0,
            "baseline {} vs fit {}",
            baseline,
            fit.quality()
        );
    }

    #[test]
    fn multi_fit_selects_one_component_for_single_region() {
        // The bump width matches the known component width: a genuine
        // single-region placement.
        let hist = gaussian_histogram(3.0, SIGMA_COMPONENT, 150);
        let fit = MultiRegionFit::fit(&hist, 4).unwrap();
        assert_eq!(fit.mixture().len(), 1, "{}", fit.mixture());
        let zones = fit.time_zones();
        assert_eq!(zones[0].0.whole_hours(), 3);
    }

    #[test]
    fn multi_fit_recovers_two_regions() {
        // 2/3 at UTC+1, 1/3 at UTC−6 (the Dream Market shape).
        let big = gaussian_histogram(1.0, 2.0, 200);
        let small = gaussian_histogram(-6.0, 2.0, 100);
        let mut placements = Vec::new();
        let mut id = 0usize;
        for (hist, share) in [(&big, 2), (&small, 1)] {
            for k in -11..=12 {
                let users = (hist.fraction_at(k) * hist.users() as f64).round() as usize * share;
                for _ in 0..users {
                    placements.push(
                        serde_json::from_str::<UserPlacement>(&format!(
                            r#"{{"user":"u{id}","zone_hours":{k},"emd":0.1}}"#
                        ))
                        .unwrap(),
                    );
                    id += 1;
                }
            }
        }
        let hist = PlacementHistogram::from_placements(&placements);
        let fit = MultiRegionFit::fit(&hist, 4).unwrap();
        assert_eq!(fit.mixture().len(), 2, "{}", fit.mixture());
        let zones = fit.time_zones();
        assert_eq!(zones[0].0.whole_hours(), 1, "largest at UTC+1");
        assert_eq!(zones[1].0.whole_hours(), -6, "second at UTC-6");
        assert!(zones[0].1 > zones[1].1);
    }

    #[test]
    fn warm_fit_tracks_a_slightly_shifted_histogram() {
        let cold_prev = MultiRegionFit::fit(&gaussian_histogram(1.0, 2.0, 200), 4).unwrap();
        // The crowd drifted a little; warm-start from the previous fit.
        let shifted = gaussian_histogram(1.4, 2.0, 210);
        let warm = MultiRegionFit::fit_warm(&shifted, 4, cold_prev.mixture()).unwrap();
        let cold = MultiRegionFit::fit(&shifted, 4).unwrap();
        assert_eq!(warm.mixture().len(), cold.mixture().len());
        let wm = warm.mixture().dominant().unwrap().mean;
        let cm = cold.mixture().dominant().unwrap().mean;
        assert!((wm - cm).abs() < 0.1, "warm {wm} cold {cm}");
    }

    #[test]
    fn warm_fit_with_empty_previous_falls_back_to_cold() {
        // An init with more components than populated zones is rejected by
        // em_warm; fit_warm must recover through the cold path.
        let over = MultiRegionFit::fit_k(&gaussian_histogram(0.0, 6.0, 400), 4).unwrap();
        let narrow = gaussian_histogram(3.0, 0.4, 10); // few populated zones
        let warm = MultiRegionFit::fit_warm(&narrow, 4, over.mixture()).unwrap();
        let cold_narrow = MultiRegionFit::fit(&narrow, 4).unwrap();
        assert_eq!(warm.mixture().len(), cold_narrow.mixture().len());
    }

    #[test]
    fn fit_k_forces_component_count() {
        let hist = gaussian_histogram(0.0, 2.5, 120);
        let fit = MultiRegionFit::fit_k(&hist, 2).unwrap();
        assert_eq!(fit.mixture().len(), 2);
    }

    #[test]
    fn empty_histogram_errors() {
        let hist = PlacementHistogram::from_placements(&[]);
        assert!(SingleRegionFit::fit(&hist).is_err());
        assert!(MultiRegionFit::fit(&hist, 3).is_err());
    }

    #[test]
    fn fits_survive_the_date_line() {
        // A crowd at UTC+12 wraps onto UTC−11; both fits must recover the
        // boundary zone instead of being dragged towards the axis middle.
        let mut placements = Vec::new();
        let mut id = 0usize;
        for (zone, n) in [(12i32, 40usize), (11, 25), (-11, 25), (10, 8), (-10, 8)] {
            for _ in 0..n {
                placements.push(UserPlacement::new(format!("u{id}"), zone, 0.1));
                id += 1;
            }
        }
        let hist = PlacementHistogram::from_placements(&placements);
        let single = SingleRegionFit::fit(&hist).unwrap();
        assert_eq!(single.time_zone().whole_hours(), 12, "{}", single.curve());
        let multi = MultiRegionFit::fit(&hist, 3).unwrap();
        assert_eq!(multi.mixture().len(), 1, "{}", multi.mixture());
        let mean = multi.mixture().dominant().unwrap().mean;
        let circ = ((mean - 12.0).abs()).min(24.0 - (mean - 12.0).abs());
        assert!(circ <= 1.0, "mean {mean}");
        // The wrapped fitted series peaks at the boundary.
        let series = multi.fitted_series();
        let peak_idx = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let peak_zone = PlacementHistogram::zone_of(peak_idx);
        assert!(
            peak_zone == 12 || peak_zone == -11,
            "peak at UTC{peak_zone:+}"
        );
    }

    #[test]
    fn snap_zone_wraps() {
        assert_eq!(snap_zone(12.4).whole_hours(), 12);
        assert_eq!(snap_zone(-11.6).whole_hours(), 12); // −12 ≡ +12
        assert_eq!(snap_zone(0.2).whole_hours(), 0);
        assert_eq!(snap_zone(-11.2).whole_hours(), -11);
    }

    #[test]
    fn display() {
        let hist = gaussian_histogram(1.0, 2.5, 100);
        let fit = SingleRegionFit::fit(&hist).unwrap();
        assert!(fit.to_string().contains("UTC+1"));
        let multi = MultiRegionFit::fit(&hist, 3).unwrap();
        assert!(multi.to_string().contains("GMM["));
    }
}
