//! The end-to-end geolocation pipeline — §V's experimental procedure.

use std::fmt;
use std::sync::Arc;

use crowdtz_stats::{pearson, FitQuality, GaussianMixture, StatsError};
use crowdtz_time::TraceSet;

use crowdtz_stats::BINS;

use crate::confidence::{bootstrap_components_threads, BootstrapConfig, ComponentConfidence};
use crate::crowd::CrowdProfile;
use crate::engine::{chunked_map, default_threads, PlacementCache, PlacementEngine};
use crate::error::CoreError;
use crate::generic::GenericProfile;
use crate::placement::{PlacementHistogram, UserPlacement, ZoneGrid};
use crate::profile::ActivityProfile;
use crate::shard::default_shards;
use crate::single::{MultiRegionFit, SingleRegionFit};
use crate::streaming::StreamingPipeline;

/// The full crowd-geolocation pipeline: profile → polish → place → fit.
///
/// Mirrors the experimental procedure the paper applies to every forum in
/// §V: build per-user profiles from UTC-normalized post times, drop
/// sub-threshold and flat users, place the rest by EMD, then uncover the
/// crowd's regions with a Gaussian-mixture fit.
///
/// [`analyze`](GeolocationPipeline::analyze) is implemented as
/// "ingest-then-snapshot" on a fresh [`StreamingPipeline`]: traces are
/// routed into hash-partitioned accumulator shards
/// ([`GeolocationPipeline::shards`]), profiles resolve through a
/// CDF-keyed placement cache
/// ([`GeolocationPipeline::placement_cache`]), and a single snapshot
/// produces the report. Every parallel stage uses order-stable chunked
/// reduction on [`GeolocationPipeline::threads`] workers, so reports are
/// byte-identical for any thread count — and any shard count.
#[derive(Debug, Clone)]
pub struct GeolocationPipeline {
    generic: GenericProfile,
    min_posts: usize,
    polish: bool,
    max_components: usize,
    threads: Option<usize>,
    shards: Option<usize>,
    placement_cache: bool,
    grid: Option<ZoneGrid>,
    observer: Option<Arc<crowdtz_obs::Observer>>,
}

impl GeolocationPipeline {
    /// A pipeline with the given generic profile, the paper's 30-post
    /// threshold, flat-profile polishing on, and up to 4 mixture
    /// components.
    pub fn with_generic(generic: GenericProfile) -> GeolocationPipeline {
        GeolocationPipeline {
            generic,
            min_posts: 30,
            polish: true,
            max_components: 4,
            threads: None,
            shards: None,
            placement_cache: true,
            grid: None,
            observer: None,
        }
    }

    /// Sets the active-user threshold.
    #[must_use]
    pub fn min_posts(mut self, min_posts: usize) -> GeolocationPipeline {
        self.min_posts = min_posts;
        self
    }

    /// Enables/disables the flat-profile filter.
    #[must_use]
    pub fn polish(mut self, polish: bool) -> GeolocationPipeline {
        self.polish = polish;
        self
    }

    /// Sets the maximum mixture size explored by model selection.
    #[must_use]
    pub fn max_components(mut self, max_components: usize) -> GeolocationPipeline {
        self.max_components = max_components.max(1);
        self
    }

    /// Sets the number of worker threads for profile building, polishing,
    /// placement, and the report's bootstrap (clamped to ≥ 1).
    ///
    /// When not set, [`default_threads`] applies: the `CROWDTZ_THREADS`
    /// environment variable, falling back to the machine's available
    /// parallelism. The thread count never changes the numbers — only the
    /// wall-clock.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> GeolocationPipeline {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the number of hash shards the analysis engine partitions its
    /// per-user accumulators into (clamped to ≥ 1).
    ///
    /// When not set, [`default_shards`] applies: the `CROWDTZ_SHARDS`
    /// environment variable, falling back to 8. The shard count shapes
    /// only *where* state lives and how bulk ingestion parallelizes —
    /// analysis output is byte-identical for every shard count (asserted
    /// by `tests/sharding_determinism.rs`).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> GeolocationPipeline {
        self.shards = Some(shards.max(1));
        self
    }

    /// Sets the zone grid the placement engine scans (24 hourly, 48
    /// half-hour, or 96 quarter-hour zones).
    ///
    /// When not set, [`ZoneGrid::from_env`] applies: the `CROWDTZ_GRID`
    /// environment variable (`48`/`half`, `96`/`quarter`), falling back
    /// to the paper's hourly grid. Activity profiles stay 24-bin hourly
    /// on every grid; finer grids add candidate zones (e.g. Nepal's
    /// +5:45), widen the placement histogram to the grid's zone count,
    /// and keep everything else — thresholds, polishing, fits — working
    /// unchanged. On the default hourly grid, reports are byte-identical
    /// to previous releases.
    #[must_use]
    pub fn grid(mut self, grid: ZoneGrid) -> GeolocationPipeline {
        self.grid = Some(grid);
        self
    }

    /// The zone grid the placement engine will scan.
    pub fn effective_grid(&self) -> ZoneGrid {
        self.grid.unwrap_or_else(ZoneGrid::from_env)
    }

    /// Enables/disables the CDF-keyed placement cache (default: enabled).
    ///
    /// The cache maps a profile's full-precision CDF bits to its resolved
    /// zone, EMD, and flatness verdict, so repeated profile shapes —
    /// common at low post counts — skip the exact EMD scan. Results are
    /// byte-identical either way; disabling it exists for benchmarking
    /// and for the cache-on == cache-off determinism tests.
    #[must_use]
    pub fn placement_cache(mut self, enabled: bool) -> GeolocationPipeline {
        self.placement_cache = enabled;
        self
    }

    /// Attaches an observer: every analysis records stage spans
    /// (`pipeline.ingest` plus the streaming engine's
    /// `streaming.refresh` / `streaming.snapshot` / `streaming.fit`;
    /// `pipeline.placement` / `pipeline.polish` / `pipeline.fit` for
    /// [`analyze_profiles`](GeolocationPipeline::analyze_profiles)),
    /// placed-user counters, and the placement engine's pruning and
    /// cache statistics into it.
    ///
    /// Observation is strictly out-of-band — reports are byte-identical
    /// with or without an observer (asserted by `tests/obs_invariants.rs`).
    /// When no observer is attached, the pipeline falls back to the
    /// process-global one ([`crowdtz_obs::install_global`]), if any.
    #[must_use]
    pub fn observer(mut self, observer: Arc<crowdtz_obs::Observer>) -> GeolocationPipeline {
        self.observer = Some(observer);
        self
    }

    /// The observer in effect: the attached one, else the process global.
    pub(crate) fn obs(&self) -> Option<Arc<crowdtz_obs::Observer>> {
        self.observer.clone().or_else(crowdtz_obs::global)
    }

    /// The worker-thread count the pipeline will use.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// The shard count the analysis engine will use.
    pub fn effective_shards(&self) -> usize {
        self.shards.unwrap_or_else(default_shards)
    }

    /// Whether the CDF-keyed placement cache is enabled.
    pub fn placement_cache_enabled(&self) -> bool {
        self.placement_cache
    }

    /// The generic profile in use.
    pub fn generic(&self) -> &GenericProfile {
        &self.generic
    }

    /// The configured active-user threshold.
    pub fn min_posts_threshold(&self) -> usize {
        self.min_posts
    }

    /// Whether the flat-profile filter is enabled.
    pub fn polish_enabled(&self) -> bool {
        self.polish
    }

    /// The configured maximum mixture size.
    pub fn max_components_limit(&self) -> usize {
        self.max_components
    }

    /// Runs the pipeline on a crowd's traces (timestamps already
    /// UTC-normalized, e.g. by scraper calibration).
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyCrowd`] when no user survives filtering.
    /// * [`CoreError::Stats`] when a numeric fit fails.
    pub fn analyze(&self, traces: &TraceSet) -> Result<GeolocationReport, CoreError> {
        self.analyze_partial(traces, 1.0)
    }

    /// Runs the pipeline on the traces of a **partial** dump — one whose
    /// crawl was interrupted and covered only a `coverage` fraction of the
    /// forum's threads (`ScrapeReport::coverage()` in `crowdtz-forum`).
    ///
    /// The analysis itself is unchanged — placements and fits use whatever
    /// posts the crawl gathered — but the report records the coverage and
    /// [widens its confidence](GeolocationReport::component_confidence)
    /// instead of silently pretending the dump was complete.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidCoverage`] when `coverage` is outside `(0, 1]`.
    /// * Everything [`analyze`](GeolocationPipeline::analyze) can return.
    pub fn analyze_partial(
        &self,
        traces: &TraceSet,
        coverage: f64,
    ) -> Result<GeolocationReport, CoreError> {
        if !coverage.is_finite() || coverage <= 0.0 || coverage > 1.0 {
            return Err(CoreError::InvalidCoverage { coverage });
        }
        // Batch analysis *is* streaming-once: ingest everything into a
        // fresh sharded engine, snapshot once. One implementation of
        // profile building, polishing, and placement for both paths —
        // the streaming identity guarantee (streaming.rs module docs) is
        // what used to keep two copies in lockstep.
        let obs = self.obs();
        let mut engine = StreamingPipeline::new(self.clone());
        {
            let _s = crowdtz_obs::span!(obs, "pipeline.ingest");
            engine.ingest_set(traces);
        }
        let report = engine.snapshot_with_coverage(coverage)?;
        if let Some(obs) = &obs {
            obs.counter("pipeline.users_placed")
                .add(report.users_classified() as u64);
            obs.counter("pipeline.flat_removed")
                .add(report.flat_removed() as u64);
            obs.counter("pipeline.analyses").inc();
        }
        Ok(report)
    }

    /// Runs polish → place → fit over prebuilt activity profiles —
    /// exposed for callers that synthesize or cache profiles directly
    /// (e.g. the 100k-user scale demo) and therefore bypass trace
    /// ingestion.
    ///
    /// Per-user CDFs resolve through the same cache-backed placement
    /// kernel the streaming engine uses
    /// ([`GeolocationPipeline::placement_cache`] applies here too, with a
    /// per-call cache), on
    /// [`effective_threads`](GeolocationPipeline::effective_threads)
    /// workers.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidCoverage`] when `coverage` is outside `(0, 1]`.
    /// * [`CoreError::EmptyCrowd`] when no profile survives polishing.
    /// * [`CoreError::Stats`] when a numeric fit fails.
    pub fn analyze_profiles(
        &self,
        profiles: Vec<ActivityProfile>,
        coverage: f64,
    ) -> Result<GeolocationReport, CoreError> {
        if !coverage.is_finite() || coverage <= 0.0 || coverage > 1.0 {
            return Err(CoreError::InvalidCoverage { coverage });
        }
        let threads = self.effective_threads();
        let obs = self.obs();
        let engine = PlacementEngine::with_grid(&self.generic, self.effective_grid());
        let mut cache = PlacementCache::new(self.placement_cache);
        let resolved = {
            let _s = crowdtz_obs::span!(obs, "pipeline.placement");
            let cdfs: Vec<[f64; BINS]> =
                chunked_map(&profiles, threads, |p| p.distribution().cdf());
            engine.resolve_cdfs(&cdfs, &mut cache, threads, obs.as_deref())
        };
        let (profiles, placements, flat_removed) = {
            let _s = crowdtz_obs::span!(obs, "pipeline.polish");
            let mut kept = Vec::with_capacity(profiles.len());
            let mut placements = Vec::with_capacity(profiles.len());
            let mut flat_removed = 0usize;
            for (profile, r) in profiles.into_iter().zip(resolved) {
                if self.polish && r.flat {
                    flat_removed += 1;
                } else {
                    placements.push(UserPlacement::from_offset_minutes(
                        profile.user(),
                        r.zone_minutes,
                        r.emd,
                    ));
                    kept.push(profile);
                }
            }
            (kept, placements, flat_removed)
        };
        if profiles.is_empty() {
            return Err(CoreError::EmptyCrowd);
        }
        let crowd = CrowdProfile::aggregate(&profiles)?;
        // Sized to the engine's grid (not the placements' covering grid)
        // so this path stays byte-identical to a streaming snapshot on the
        // same grid.
        let histogram =
            PlacementHistogram::from_placements_on_grid(placements.iter(), self.effective_grid());
        let (single, multi) = {
            let _s = crowdtz_obs::span!(obs, "pipeline.fit");
            (
                SingleRegionFit::fit(&histogram)?,
                MultiRegionFit::fit(&histogram, self.max_components)?,
            )
        };
        if let Some(obs) = &obs {
            obs.counter("placement.users").add(placements.len() as u64);
            obs.counter("pipeline.users_placed")
                .add(placements.len() as u64);
            obs.counter("pipeline.flat_removed")
                .add(flat_removed as u64);
            obs.counter("pipeline.analyses").inc();
        }
        Ok(GeolocationReport {
            profiles: Arc::new(profiles),
            flat_removed,
            crowd,
            placements: Arc::new(placements),
            histogram,
            single,
            multi,
            coverage,
            threads,
        })
    }

    /// Pearson correlation between a crowd's UTC profile and the generic
    /// profile at a given offset — the paper reports 0.93 for CRD Club vs
    /// the generic Twitter profile.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from the correlation computation.
    pub fn crowd_correlation(
        &self,
        crowd: &CrowdProfile,
        offset_hours: i32,
    ) -> Result<f64, StatsError> {
        pearson(
            crowd.distribution().as_slice(),
            self.generic.zone_profile(offset_hours).as_slice(),
        )
    }
}

impl Default for GeolocationPipeline {
    /// Pipeline using [`GenericProfile::reference`].
    fn default() -> GeolocationPipeline {
        GeolocationPipeline::with_generic(GenericProfile::reference())
    }
}

/// Everything the pipeline learned about a crowd.
///
/// Serializable — the streaming identity tests compare incremental and
/// batch reports byte-for-byte through `serde_json`.
///
/// The per-user vectors are behind [`Arc`]: a report is an immutable
/// snapshot, so the streaming pipeline can hand out successive reports
/// that share their unchanged profile/placement storage instead of deep-
/// copying ~n users per snapshot. (An `Arc` serializes exactly like its
/// contents, so the byte-identity guarantee is unaffected.)
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GeolocationReport {
    profiles: Arc<Vec<ActivityProfile>>,
    flat_removed: usize,
    crowd: CrowdProfile,
    placements: Arc<Vec<UserPlacement>>,
    histogram: PlacementHistogram,
    single: SingleRegionFit,
    multi: MultiRegionFit,
    coverage: f64,
    threads: usize,
}

impl GeolocationReport {
    /// Assembles a report from precomputed parts — used by the streaming
    /// pipeline, whose snapshots must be byte-identical to batch reports.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        profiles: Arc<Vec<ActivityProfile>>,
        flat_removed: usize,
        crowd: CrowdProfile,
        placements: Arc<Vec<UserPlacement>>,
        histogram: PlacementHistogram,
        single: SingleRegionFit,
        multi: MultiRegionFit,
        coverage: f64,
        threads: usize,
    ) -> GeolocationReport {
        GeolocationReport {
            profiles,
            flat_removed,
            crowd,
            placements,
            histogram,
            single,
            multi,
            coverage,
            threads,
        }
    }

    /// The per-user profiles that entered the analysis.
    pub fn profiles(&self) -> &[ActivityProfile] {
        &self.profiles
    }

    /// Number of users the flat-profile filter removed.
    pub fn flat_removed(&self) -> usize {
        self.flat_removed
    }

    /// Number of users classified.
    pub fn users_classified(&self) -> usize {
        self.profiles.len()
    }

    /// Total posts contributing to the analysis.
    pub fn posts_classified(&self) -> usize {
        self.profiles.iter().map(ActivityProfile::post_count).sum()
    }

    /// The crowd's aggregate profile (UTC hours).
    pub fn crowd_profile(&self) -> &CrowdProfile {
        &self.crowd
    }

    /// Per-user placements.
    pub fn placements(&self) -> &[UserPlacement] {
        &self.placements
    }

    /// The placement histogram over the analysis grid's zones (24 hourly
    /// zones by default; 48 or 96 when a finer [`ZoneGrid`] was selected).
    ///
    /// [`ZoneGrid`]: crate::ZoneGrid
    pub fn histogram(&self) -> &PlacementHistogram {
        &self.histogram
    }

    /// The single-Gaussian fit (§IV.A).
    pub fn single_fit(&self) -> &SingleRegionFit {
        &self.single
    }

    /// The Gaussian-mixture fit (§IV.B).
    pub fn multi_fit(&self) -> &MultiRegionFit {
        &self.multi
    }

    /// The selected mixture.
    pub fn mixture(&self) -> &GaussianMixture {
        self.multi.mixture()
    }

    /// Fraction of the forum the crawl behind this analysis covered
    /// (`1.0` unless the report came from
    /// [`analyze_partial`](GeolocationPipeline::analyze_partial)).
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// True when the underlying dump was incomplete.
    pub fn is_partial(&self) -> bool {
        self.coverage < 1.0
    }

    /// The worker-thread count the analysis ran with (and the bootstrap
    /// in [`component_confidence`](GeolocationReport::component_confidence)
    /// will use). Informational — the numbers are thread-count-invariant.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Bootstrap confidence for each mixture component, widened for
    /// coverage.
    ///
    /// The bootstrap resamples only the users the crawl actually saw; a
    /// dump covering a fraction *c* of the forum's threads sampled roughly
    /// *c* of the crowd, so the resampling standard error understates the
    /// uncertainty about the **full** crowd by a factor of about √c. Each
    /// component's `std_error` is therefore divided by √c — a complete
    /// dump (`c = 1`) is returned unchanged.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from
    /// [`bootstrap_components`](crate::bootstrap_components).
    pub fn component_confidence(
        &self,
        config: &BootstrapConfig,
    ) -> Result<Vec<ComponentConfidence>, StatsError> {
        let widen = 1.0 / self.coverage.sqrt();
        Ok(
            bootstrap_components_threads(&self.placements, config, self.threads)?
                .into_iter()
                .map(|mut c| {
                    c.std_error *= widen;
                    c
                })
                .collect(),
        )
    }

    /// Table II row for this crowd: mixture fit quality.
    pub fn quality(&self) -> FitQuality {
        self.multi.quality()
    }

    /// Renders the full report as terminal text: the placement chart with
    /// the fitted curve overlaid, and one line per uncovered component
    /// with the paper-style city labels.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        // The fitted curve is sampled at the histogram's own zone
        // coordinates so the overlay lines up on every grid width
        // (`fitted_series()` is fixed at the 24 hourly points).
        let fitted = self
            .multi
            .mixture()
            .density_all_wrapped(&self.histogram.zone_coords(), 24.0);
        let mut out = crowdtz_stats::render_overlay(
            &format!(
                "placement of {} users (bar = crowd fraction, · = fitted mixture)",
                self.users_classified()
            ),
            self.histogram.fractions(),
            &fitted,
        );
        let _ = writeln!(
            out,
            "{} users classified from {} posts ({} flat profiles removed)",
            self.users_classified(),
            self.posts_classified(),
            self.flat_removed
        );
        if self.is_partial() {
            let _ = writeln!(
                out,
                "partial dump: {:.0}% of threads covered — confidence widened x{:.2}",
                self.coverage * 100.0,
                1.0 / self.coverage.sqrt()
            );
        }
        for (zone, weight) in self.multi.time_zones() {
            let _ = writeln!(
                out,
                "  {:>3.0}% of the crowd in {}",
                weight * 100.0,
                crowdtz_time::zone_label(zone)
            );
        }
        let _ = writeln!(out, "fit quality: {}", self.quality());
        out
    }
}

impl fmt::Display for GeolocationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} users classified ({} flat removed), peak UTC{:+}",
            self.users_classified(),
            self.flat_removed,
            self.histogram.peak_zone()
        )?;
        if self.is_partial() {
            writeln!(f, "coverage: {:.0}% of threads", self.coverage * 100.0)?;
        }
        write!(f, "mixture: {}", self.multi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtz_synth::{generate_bot, BotSpec, PopulationSpec};
    use crowdtz_time::RegionDb;

    fn crowd(region: &str, users: usize, seed: u64) -> TraceSet {
        let db = RegionDb::extended();
        PopulationSpec::new(db.get(&region.into()).unwrap().clone())
            .users(users)
            .seed(seed)
            .posts_per_day(0.5)
            .generate()
    }

    #[test]
    fn single_region_crowd_lands_on_home_zone() {
        let pipeline = GeolocationPipeline::default();
        for (region, offset) in [("japan", 9), ("malaysia", 8), ("russia-moscow", 3)] {
            let report = pipeline.analyze(&crowd(region, 50, 7)).unwrap();
            let dominant = report.mixture().dominant().unwrap();
            assert!(
                (dominant.mean - f64::from(offset)).abs() <= 1.5,
                "{region}: mean {} expected ~{offset}",
                dominant.mean
            );
            assert!(report.users_classified() > 30);
        }
    }

    #[test]
    fn mixture_splits_two_distant_regions() {
        let mut traces = crowd("japan", 60, 3); // UTC+9
        for t in crowd("brazil", 60, 4).iter() {
            // UTC-3
            traces.insert(t.clone());
        }
        let report = GeolocationPipeline::default().analyze(&traces).unwrap();
        assert!(report.mixture().len() >= 2, "{}", report.mixture());
        let means: Vec<f64> = report
            .mixture()
            .components()
            .iter()
            .map(|c| c.mean)
            .collect();
        assert!(means.iter().any(|m| (m - 9.0).abs() < 2.0), "{means:?}");
        assert!(means.iter().any(|m| (m + 3.0).abs() < 2.5), "{means:?}");
    }

    #[test]
    fn bots_are_removed() {
        let mut traces = crowd("italy", 40, 5);
        for b in 0..5 {
            traces.insert(generate_bot(
                &format!("bot{b}"),
                &BotSpec::default(),
                b as u64,
            ));
        }
        let report = GeolocationPipeline::default().analyze(&traces).unwrap();
        assert!(
            report.flat_removed() >= 4,
            "removed {}",
            report.flat_removed()
        );
        for p in report.placements() {
            assert!(!p.user().starts_with("bot"), "bot {} survived", p.user());
        }
    }

    #[test]
    fn polish_can_be_disabled() {
        let mut traces = crowd("italy", 20, 5);
        traces.insert(generate_bot("bot", &BotSpec::default(), 1));
        let report = GeolocationPipeline::default()
            .polish(false)
            .analyze(&traces)
            .unwrap();
        assert_eq!(report.flat_removed(), 0);
    }

    #[test]
    fn empty_crowd_errors() {
        let traces = TraceSet::new();
        assert!(matches!(
            GeolocationPipeline::default().analyze(&traces),
            Err(CoreError::EmptyCrowd)
        ));
    }

    #[test]
    fn min_posts_threshold_applies() {
        let traces = crowd("france", 30, 9);
        let strict = GeolocationPipeline::default()
            .min_posts(10_000)
            .analyze(&traces);
        assert!(matches!(strict, Err(CoreError::EmptyCrowd)));
    }

    #[test]
    fn crowd_correlation_high_at_home_zone() {
        let pipeline = GeolocationPipeline::default();
        let report = pipeline.analyze(&crowd("russia-moscow", 60, 11)).unwrap();
        let at_home = pipeline
            .crowd_correlation(report.crowd_profile(), 3)
            .unwrap();
        let far = pipeline
            .crowd_correlation(report.crowd_profile(), -9)
            .unwrap();
        assert!(at_home > 0.85, "correlation at home {at_home}");
        assert!(at_home > far);
    }

    #[test]
    fn quality_beats_baseline() {
        let report = GeolocationPipeline::default()
            .analyze(&crowd("malaysia", 80, 13))
            .unwrap();
        let baseline = report.single_fit().baseline(report.histogram()).unwrap();
        assert!(report.single_fit().quality().average < baseline.average);
    }

    #[test]
    fn report_accessors_and_display() {
        let report = GeolocationPipeline::default()
            .analyze(&crowd("japan", 40, 2))
            .unwrap();
        assert!(report.posts_classified() > 0);
        assert_eq!(report.placements().len(), report.users_classified());
        assert!(!report.profiles().is_empty());
        let text = report.to_string();
        assert!(text.contains("users classified"), "{text}");
    }

    #[test]
    fn max_components_caps_the_mixture() {
        // A two-region crowd forced through a single-component fit.
        let mut traces = crowd("japan", 30, 3);
        for t in crowd("brazil", 30, 4).iter() {
            traces.insert(t.clone());
        }
        let report = GeolocationPipeline::default()
            .max_components(1)
            .analyze(&traces)
            .unwrap();
        assert_eq!(report.mixture().len(), 1);
    }

    #[test]
    fn invalid_coverage_is_rejected() {
        let traces = crowd("italy", 20, 1);
        let pipeline = GeolocationPipeline::default();
        for bad in [0.0, -0.5, 1.01, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                pipeline.analyze_partial(&traces, bad),
                Err(CoreError::InvalidCoverage { .. })
            ));
        }
    }

    #[test]
    fn full_coverage_matches_plain_analyze() {
        let traces = crowd("italy", 40, 8);
        let pipeline = GeolocationPipeline::default();
        let full = pipeline.analyze(&traces).unwrap();
        assert_eq!(full.coverage(), 1.0);
        assert!(!full.is_partial());
        let explicit = pipeline.analyze_partial(&traces, 1.0).unwrap();
        assert_eq!(
            explicit.histogram().fractions(),
            full.histogram().fractions()
        );
    }

    #[test]
    fn partial_coverage_widens_confidence() {
        let traces = crowd("italy", 60, 8);
        let pipeline = GeolocationPipeline::default();
        let cfg = crate::BootstrapConfig {
            iterations: 40,
            ..crate::BootstrapConfig::default()
        };
        let full = pipeline.analyze(&traces).unwrap();
        let partial = pipeline.analyze_partial(&traces, 0.25).unwrap();
        assert!(partial.is_partial());
        let tight = full.component_confidence(&cfg).unwrap();
        let wide = partial.component_confidence(&cfg).unwrap();
        assert_eq!(tight.len(), wide.len());
        // Same placements, so the widening is exactly 1/sqrt(0.25) = 2.
        for (t, w) in tight.iter().zip(&wide) {
            assert!((w.std_error - 2.0 * t.std_error).abs() < 1e-9);
            assert_eq!(t.mean, w.mean);
        }
        // The partial report says so, in both renderings.
        assert!(
            partial.render().contains("partial dump"),
            "{}",
            partial.render()
        );
        assert!(partial.to_string().contains("coverage"), "{partial}");
        assert!(!full.render().contains("partial dump"));
    }

    #[test]
    fn render_includes_chart_and_city_labels() {
        let report = GeolocationPipeline::default()
            .analyze(&crowd("japan", 40, 2))
            .unwrap();
        let text = report.render();
        // The dominant zone rounds to UTC+8 or UTC+9 (small-crowd jitter);
        // either way a city label and the chart must be present.
        assert!(text.contains("Tokyo") || text.contains("Beijing"), "{text}");
        assert!(text.contains("% of the crowd in UTC+"), "{text}");
        assert!(text.contains("fit quality"), "{text}");
        assert!(text.contains('█'), "{text}");
    }
}
