//! User activity profiles — Eq. 1 of the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use crowdtz_stats::{Distribution24, Histogram24};
use crowdtz_time::{HolidayCalendar, Timestamp, TraceSet, TzOffset, UserTrace, Zone};

/// A user's activity profile: the probability of being active at each hour
/// of the day (Eq. 1).
///
/// The paper's `a_d(h)` is a boolean — *whether* the user posted in hour
/// `h` of day `d` — so multiple posts within the same hour of the same day
/// count once. The profile is the normalized count of active (day, hour)
/// slots per hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityProfile {
    user: String,
    distribution: Distribution24,
    active_slots: usize,
    post_count: usize,
}

impl ActivityProfile {
    /// Builds the profile of a trace with hours read in a **fixed offset**
    /// (use [`TzOffset::UTC`] for anonymous crowds, whose zone is unknown).
    ///
    /// Returns `None` for traces with no posts.
    pub fn from_trace_offset(trace: &UserTrace, offset: TzOffset) -> Option<ActivityProfile> {
        Self::build(
            trace,
            |ts| (ts.day_in_offset(offset), ts.hour_in_offset(offset)),
            None,
            &mut Vec::new(),
        )
    }

    /// Builds the profile with hours read in **local civil time** of a
    /// [`Zone`], honouring daylight saving — the paper does this when
    /// building ground-truth region profiles (*"we have considered daylight
    /// saving time for all regions where it is used"*) — and optionally
    /// dropping posts that fall on holidays.
    pub fn from_trace_local(
        trace: &UserTrace,
        zone: Zone,
        holidays: Option<&HolidayCalendar>,
    ) -> Option<ActivityProfile> {
        Self::build(
            trace,
            |ts| {
                let local = zone.to_local(ts);
                (local.date().days_since_epoch(), local.hour())
            },
            holidays.map(|h| (zone, h)),
            &mut Vec::new(),
        )
    }

    /// The build kernel behind both constructors. `scratch` collects the
    /// (day, hour) keys and is sort+dedup'd in place — callers on hot
    /// paths reuse one buffer across users instead of growing a fresh
    /// `BTreeSet` per trace (node allocation per post dominated the old
    /// profile-build cost).
    fn build(
        trace: &UserTrace,
        slot: impl Fn(Timestamp) -> (i64, u8),
        holiday_filter: Option<(Zone, &HolidayCalendar)>,
        scratch: &mut Vec<(i64, u8)>,
    ) -> Option<ActivityProfile> {
        scratch.clear();
        let mut posts = 0usize;
        for &ts in trace.posts() {
            if let Some((zone, calendar)) = &holiday_filter {
                if calendar.contains(zone.to_local(ts).date()) {
                    continue;
                }
            }
            posts += 1;
            scratch.push(slot(ts));
        }
        scratch.sort_unstable();
        scratch.dedup();
        if scratch.is_empty() {
            return None;
        }
        let hist: Histogram24 = scratch.iter().map(|&(_, h)| h).collect();
        Some(ActivityProfile {
            user: trace.id().to_owned(),
            distribution: hist.normalized().ok()?,
            active_slots: scratch.len(),
            post_count: posts,
        })
    }

    /// Assembles a profile from already-computed parts — the streaming
    /// accumulators maintain slot counts incrementally and must produce
    /// profiles bit-identical to the batch constructors.
    pub(crate) fn from_parts(
        user: String,
        distribution: Distribution24,
        active_slots: usize,
        post_count: usize,
    ) -> ActivityProfile {
        ActivityProfile {
            user,
            distribution,
            active_slots,
            post_count,
        }
    }

    /// The user's pseudonym.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The hourly activity distribution `P_u`.
    pub fn distribution(&self) -> &Distribution24 {
        &self.distribution
    }

    /// Number of distinct active (day, hour) slots.
    pub fn active_slots(&self) -> usize {
        self.active_slots
    }

    /// Number of posts contributing to the profile (after filters).
    pub fn post_count(&self) -> usize {
        self.post_count
    }

    /// A copy with the hourly distribution rotated by `hours`.
    ///
    /// Used to express a DST-normalized *local-time* profile in UTC hours
    /// (rotate by minus the standard offset): the paper builds ground-truth
    /// profiles with daylight saving accounted for, then compares in a
    /// common frame.
    #[must_use]
    pub fn shifted(&self, hours: i32) -> ActivityProfile {
        ActivityProfile {
            user: self.user.clone(),
            distribution: self.distribution.shifted(hours),
            active_slots: self.active_slots,
            post_count: self.post_count,
        }
    }
}

impl fmt::Display for ActivityProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} slots, peak {:02}h",
            self.user,
            self.active_slots,
            self.distribution.peak_hour()
        )
    }
}

/// Builds per-user profiles from a trace set with the paper's filters.
///
/// ```
/// use crowdtz_core::ProfileBuilder;
/// use crowdtz_time::{TraceSet, Timestamp, UserTrace};
///
/// let mut traces = TraceSet::new();
/// traces.insert(UserTrace::new("busy", (0..40).map(|i| Timestamp::from_secs(i * 90_000)).collect()));
/// traces.insert(UserTrace::new("quiet", vec![Timestamp::from_secs(0)]));
/// let profiles = ProfileBuilder::new().min_posts(30).build(&traces);
/// assert_eq!(profiles.len(), 1); // "quiet" is filtered out
/// ```
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    min_posts: usize,
    offset: TzOffset,
    local: Option<(Zone, Option<HolidayCalendar>)>,
}

impl ProfileBuilder {
    /// Default builder: UTC hours, the paper's 30-post activity threshold.
    pub fn new() -> ProfileBuilder {
        ProfileBuilder {
            min_posts: 30,
            offset: TzOffset::UTC,
            local: None,
        }
    }

    /// Sets the minimum number of posts for a user to be profiled
    /// (*"non active users … lower than a certain threshold … we chose the
    /// threshold to be 30 posts"*).
    #[must_use]
    pub fn min_posts(mut self, min_posts: usize) -> ProfileBuilder {
        self.min_posts = min_posts;
        self
    }

    /// Reads hours in the given fixed offset (anonymous crowds: UTC).
    #[must_use]
    pub fn offset(mut self, offset: TzOffset) -> ProfileBuilder {
        self.offset = offset;
        self.local = None;
        self
    }

    /// Reads hours in local civil time of a known zone (DST-aware), with
    /// an optional holiday filter — the ground-truth configuration.
    #[must_use]
    pub fn local_zone(mut self, zone: Zone, holidays: Option<HolidayCalendar>) -> ProfileBuilder {
        self.local = Some((zone, holidays));
        self
    }

    /// Builds the profiles of all sufficiently active users.
    pub fn build(&self, traces: &TraceSet) -> Vec<ActivityProfile> {
        self.build_threads(traces, 1)
    }

    /// [`ProfileBuilder::build`] fanned across `threads` worker threads.
    ///
    /// Traces are split into contiguous chunks in the trace set's (sorted)
    /// iteration order and per-chunk results are concatenated in chunk
    /// order, so the output is identical for every thread count.
    pub fn build_threads(&self, traces: &TraceSet, threads: usize) -> Vec<ActivityProfile> {
        let eligible: Vec<&UserTrace> = traces
            .iter()
            .filter(|t| t.len() >= self.min_posts)
            .collect();
        crate::engine::chunked_map_with(&eligible, threads, Vec::new, |scratch, t, out| {
            let profile = match &self.local {
                Some((zone, holidays)) => {
                    let (zone, holidays) = (*zone, holidays.as_ref());
                    ActivityProfile::build(
                        t,
                        |ts| {
                            let local = zone.to_local(ts);
                            (local.date().days_since_epoch(), local.hour())
                        },
                        holidays.map(|h| (zone, h)),
                        scratch,
                    )
                }
                None => {
                    let offset = self.offset;
                    ActivityProfile::build(
                        t,
                        |ts| (ts.day_in_offset(offset), ts.hour_in_offset(offset)),
                        None,
                        scratch,
                    )
                }
            };
            out.extend(profile);
        })
    }
}

impl Default for ProfileBuilder {
    fn default() -> ProfileBuilder {
        ProfileBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtz_time::{CivilDateTime, TraceSet};

    fn at(y: i32, m: u8, d: u8, h: u8, min: u8) -> Timestamp {
        Timestamp::from_civil_utc(CivilDateTime::new(y, m, d, h, min, 0).unwrap())
    }

    #[test]
    fn multiple_posts_in_one_hour_count_once() {
        // Three posts in the same hour of the same day → one active slot.
        let trace = UserTrace::new(
            "u",
            vec![
                at(2016, 5, 1, 9, 0),
                at(2016, 5, 1, 9, 20),
                at(2016, 5, 1, 9, 55),
            ],
        );
        let p = ActivityProfile::from_trace_offset(&trace, TzOffset::UTC).unwrap();
        assert_eq!(p.active_slots(), 1);
        assert_eq!(p.post_count(), 3);
        assert_eq!(p.distribution().get(9), 1.0);
    }

    #[test]
    fn same_hour_on_different_days_counts_per_day() {
        let trace = UserTrace::new("u", vec![at(2016, 5, 1, 9, 0), at(2016, 5, 2, 9, 0)]);
        let p = ActivityProfile::from_trace_offset(&trace, TzOffset::UTC).unwrap();
        assert_eq!(p.active_slots(), 2);
        assert_eq!(p.distribution().get(9), 1.0);
    }

    #[test]
    fn profile_is_normalized() {
        let trace = UserTrace::new(
            "u",
            vec![
                at(2016, 5, 1, 9, 0),
                at(2016, 5, 1, 21, 0),
                at(2016, 5, 2, 21, 0),
            ],
        );
        let p = ActivityProfile::from_trace_offset(&trace, TzOffset::UTC).unwrap();
        let total: f64 = p.distribution().as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((p.distribution().get(21) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn offset_shifts_hours() {
        let trace = UserTrace::new("u", vec![at(2016, 5, 1, 23, 30)]);
        let utc = ActivityProfile::from_trace_offset(&trace, TzOffset::UTC).unwrap();
        assert_eq!(utc.distribution().peak_hour(), 23);
        let plus2 =
            ActivityProfile::from_trace_offset(&trace, TzOffset::from_hours(2).unwrap()).unwrap();
        assert_eq!(plus2.distribution().peak_hour(), 1);
    }

    #[test]
    fn local_zone_applies_dst() {
        // 12:00 UTC in July is 14:00 in Berlin (UTC+2 with DST).
        let trace = UserTrace::new("u", vec![at(2016, 7, 15, 12, 0)]);
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let p = ActivityProfile::from_trace_local(&trace, berlin, None).unwrap();
        assert_eq!(p.distribution().peak_hour(), 14);
    }

    #[test]
    fn holiday_filter_drops_posts() {
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let cal = HolidayCalendar::western(); // includes Dec 23 – Jan 2
        let trace = UserTrace::new("u", vec![at(2016, 12, 25, 10, 0), at(2016, 3, 10, 10, 0)]);
        let p = ActivityProfile::from_trace_local(&trace, berlin, Some(&cal)).unwrap();
        assert_eq!(p.post_count(), 1);
        // All posts on holidays → no profile at all.
        let only_holiday = UserTrace::new("u", vec![at(2016, 12, 25, 10, 0)]);
        assert!(ActivityProfile::from_trace_local(&only_holiday, berlin, Some(&cal)).is_none());
    }

    #[test]
    fn empty_trace_yields_none() {
        let trace = UserTrace::new("u", vec![]);
        assert!(ActivityProfile::from_trace_offset(&trace, TzOffset::UTC).is_none());
    }

    #[test]
    fn builder_threshold() {
        let mut traces = TraceSet::new();
        let many: Vec<Timestamp> = (0..35)
            .map(|i| at(2016, 3, 1 + (i % 28) as u8, 10, 0) + i64::from(i) * 60)
            .collect();
        traces.insert(UserTrace::new("active", many));
        traces.insert(UserTrace::new("casual", vec![at(2016, 3, 1, 10, 0)]));
        let profiles = ProfileBuilder::new().min_posts(30).build(&traces);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].user(), "active");
        // Lowering the threshold admits both.
        let profiles = ProfileBuilder::new().min_posts(1).build(&traces);
        assert_eq!(profiles.len(), 2);
    }

    #[test]
    fn display() {
        let trace = UserTrace::new("alice", vec![at(2016, 5, 1, 9, 0)]);
        let p = ActivityProfile::from_trace_offset(&trace, TzOffset::UTC).unwrap();
        assert!(p.to_string().contains("alice"));
        assert!(p.to_string().contains("09h"));
    }
}
