//! Bootstrap confidence intervals for mixture components — an extension
//! beyond the paper.
//!
//! The paper reports point estimates for the uncovered time zones. For an
//! investigator, the natural follow-up question is *how sure* the method
//! is: resampling the classified users with replacement and refitting
//! yields an empirical standard error per component mean, turning
//! "the crowd is at UTC+1" into "UTC+1 ± 0.4 h".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crowdtz_stats::StatsError;

use crate::placement::{PlacementHistogram, UserPlacement};
use crate::single::MultiRegionFit;

/// Bootstrap summary for one mixture component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentConfidence {
    /// The reference fit's component mean (zone coordinate).
    pub mean: f64,
    /// The reference fit's mixing weight.
    pub weight: f64,
    /// Bootstrap standard error of the mean.
    pub std_error: f64,
    /// Fraction of bootstrap fits in which a matching component appeared
    /// (within 3 h circularly) — a stability score.
    pub support: f64,
}

/// Configuration for the bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples.
    pub iterations: usize,
    /// RNG seed (the procedure is deterministic given the seed).
    pub seed: u64,
    /// Match radius (hours, circular) when pairing bootstrap components
    /// with reference components.
    pub match_radius: f64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            iterations: 200,
            seed: 0,
            match_radius: 3.0,
        }
    }
}

fn circular_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(24.0);
    d.min(24.0 - d)
}

/// Bootstraps the mixture fit over the classified users, using
/// [`default_threads`](crate::default_threads) worker threads.
///
/// See [`bootstrap_components_threads`] — the result is byte-identical
/// for every thread count, so the machine-dependent default changes only
/// the wall-clock, never the numbers.
///
/// # Errors
///
/// Propagates fitting errors; returns [`StatsError::NotEnoughData`] for an
/// empty placement list.
pub fn bootstrap_components(
    placements: &[UserPlacement],
    config: &BootstrapConfig,
) -> Result<Vec<ComponentConfidence>, StatsError> {
    bootstrap_components_threads(placements, config, crate::engine::default_threads())
}

/// Bootstraps the mixture fit over the classified users on `threads`
/// worker threads.
///
/// Resamples the placements with replacement `iterations` times, refits a
/// mixture with the reference component count each time, and matches each
/// bootstrap component to the nearest reference component (circularly,
/// within `match_radius`).
///
/// # Determinism
///
/// Each resample draws from its own RNG seeded as
/// `config.seed ^ resample_index`, resamples **indices** into the shared
/// placement slice (no `UserPlacement` clones), and builds its histogram
/// straight from the sampled zone indices. Per-resample results are
/// reduced in resample order (contiguous chunks, concatenated in chunk
/// order), so the output is byte-identical for any thread count,
/// including 1.
///
/// # Errors
///
/// Propagates fitting errors; returns [`StatsError::NotEnoughData`] for an
/// empty placement list.
pub fn bootstrap_components_threads(
    placements: &[UserPlacement],
    config: &BootstrapConfig,
    threads: usize,
) -> Result<Vec<ComponentConfidence>, StatsError> {
    if placements.is_empty() {
        return Err(StatsError::NotEnoughData { got: 0, needed: 1 });
    }
    let reference_hist = PlacementHistogram::from_placements(placements);
    let reference = MultiRegionFit::fit(&reference_hist, 4)?;
    let k = reference.mixture().len();
    let ref_means: Vec<(f64, f64)> = reference
        .mixture()
        .components()
        .iter()
        .map(|c| (c.mean, c.weight))
        .collect();

    // Zone indices are extracted once; resampling only ever touches this
    // flat byte array, never the heap-backed placement records. The grid
    // is the coarsest one covering every placement, matching the
    // reference histogram built by `from_placements` above.
    let grid = crate::placement::ZoneGrid::covering(placements.iter());
    let zone_indices: Vec<u8> = placements
        .iter()
        .map(|p| grid.index_of_minutes(p.offset_minutes()) as u8)
        .collect();
    let users = zone_indices.len();

    let resample_ids: Vec<u64> = (0..config.iterations as u64).collect();
    let ref_means_view = &ref_means;
    let zone_view = &zone_indices;
    // Each worker reuses one zone-count scratch buffer and appends its
    // matches to one flat output vector — no per-resample allocations.
    // Output order is (resample order, component order), exactly the
    // order the old per-resample Vec-of-Vecs reduction produced, so the
    // summary below is byte-identical.
    let matches: Vec<(usize, f64)> = crate::engine::chunked_map_with(
        &resample_ids,
        threads,
        || vec![0usize; grid.zones()],
        move |counts, &resample_index, out| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ resample_index);
            counts.fill(0);
            for _ in 0..users {
                counts[zone_view[rng.gen_range(0..users)] as usize] += 1;
            }
            let hist = PlacementHistogram::from_zone_counts(counts);
            let Ok(fit) = MultiRegionFit::fit_k(&hist, k) else {
                return;
            };
            out.extend(fit.mixture().components().iter().filter_map(|c| {
                // Nearest reference component within the match radius.
                ref_means_view
                    .iter()
                    .enumerate()
                    .map(|(i, (m, _))| (i, circular_distance(c.mean, *m)))
                    .filter(|(_, d)| *d <= config.match_radius)
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| (i, c.mean))
            }));
        },
    );

    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); k];
    for (idx, mean) in matches {
        samples[idx].push(mean);
    }

    Ok(ref_means
        .into_iter()
        .enumerate()
        .map(|(i, (mean, weight))| {
            let n = samples[i].len();
            let std_error = if n > 1 {
                let m = samples[i].iter().sum::<f64>() / n as f64;
                (samples[i].iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64).sqrt()
            } else {
                f64::INFINITY
            };
            ComponentConfidence {
                mean,
                weight,
                std_error,
                support: n as f64 / config.iterations.max(1) as f64,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_placements(mean: f64, sigma: f64, n: usize, tag: &str) -> Vec<UserPlacement> {
        let mut out = Vec::new();
        let mut id = 0usize;
        for k in -11..=12 {
            let z = (f64::from(k) - mean) / sigma;
            let users = ((-0.5 * z * z).exp() * n as f64).round() as usize;
            for _ in 0..users {
                out.push(UserPlacement::new(format!("{tag}{id}"), k, 0.1));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn single_region_bootstrap_is_tight_and_stable() {
        let placements = gaussian_placements(3.0, 2.0, 60, "u");
        let conf = bootstrap_components(
            &placements,
            &BootstrapConfig {
                iterations: 60,
                ..BootstrapConfig::default()
            },
        )
        .unwrap();
        assert_eq!(conf.len(), 1);
        let c = &conf[0];
        assert!((c.mean - 3.0).abs() < 0.5, "mean {}", c.mean);
        assert!(c.std_error < 1.0, "std error {}", c.std_error);
        assert!(c.support > 0.9, "support {}", c.support);
    }

    #[test]
    fn two_region_bootstrap_matches_components() {
        let mut placements = gaussian_placements(1.0, 2.0, 80, "eu");
        placements.extend(gaussian_placements(-6.0, 2.0, 40, "us"));
        let conf = bootstrap_components(
            &placements,
            &BootstrapConfig {
                iterations: 60,
                ..BootstrapConfig::default()
            },
        )
        .unwrap();
        assert_eq!(conf.len(), 2);
        // Heaviest first; both supported and tight.
        assert!(conf[0].weight > conf[1].weight);
        for c in &conf {
            assert!(c.support > 0.8, "support {}", c.support);
            assert!(c.std_error < 1.2, "std error {}", c.std_error);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let placements = gaussian_placements(0.0, 2.0, 40, "u");
        let cfg = BootstrapConfig {
            iterations: 30,
            seed: 9,
            ..BootstrapConfig::default()
        };
        let a = bootstrap_components(&placements, &cfg).unwrap();
        let b = bootstrap_components(&placements, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_errors() {
        assert!(bootstrap_components(&[], &BootstrapConfig::default()).is_err());
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        let mut placements = gaussian_placements(2.0, 2.0, 50, "eu");
        placements.extend(gaussian_placements(-7.0, 2.0, 30, "us"));
        let cfg = BootstrapConfig {
            iterations: 40,
            seed: 5,
            ..BootstrapConfig::default()
        };
        let base = bootstrap_components_threads(&placements, &cfg, 1).unwrap();
        let base_json = serde_json::to_string(&base).unwrap();
        for threads in [2usize, 4, 8] {
            let other = bootstrap_components_threads(&placements, &cfg, threads).unwrap();
            assert_eq!(
                base_json,
                serde_json::to_string(&other).unwrap(),
                "{threads} threads"
            );
        }
    }

    /// Regression: the index-resampling fast path must reproduce the old
    /// clone-every-placement implementation exactly (same per-resample
    /// seeds), both per-resample histogram and final summary.
    #[test]
    fn index_resampling_matches_clone_resampling() {
        let mut placements = gaussian_placements(1.0, 2.0, 60, "eu");
        placements.extend(gaussian_placements(8.0, 2.0, 35, "asia"));
        let cfg = BootstrapConfig {
            iterations: 25,
            seed: 42,
            ..BootstrapConfig::default()
        };

        // The old path: clone sampled placements, build the histogram from
        // the cloned records, fit, match against the reference components.
        let reference_hist = PlacementHistogram::from_placements(&placements);
        let reference = MultiRegionFit::fit(&reference_hist, 4).unwrap();
        let k = reference.mixture().len();
        let ref_means: Vec<(f64, f64)> = reference
            .mixture()
            .components()
            .iter()
            .map(|c| (c.mean, c.weight))
            .collect();
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); k];
        for resample_index in 0..cfg.iterations as u64 {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ resample_index);
            let resampled: Vec<UserPlacement> = (0..placements.len())
                .map(|_| placements[rng.gen_range(0..placements.len())].clone())
                .collect();
            let hist = PlacementHistogram::from_placements(&resampled);

            // The index path must build the exact same histogram from the
            // same draws without materializing any UserPlacement.
            let mut rng2 = StdRng::seed_from_u64(cfg.seed ^ resample_index);
            let mut counts = [0usize; crate::placement::ZONE_COUNT];
            for _ in 0..placements.len() {
                let idx = rng2.gen_range(0..placements.len());
                counts[PlacementHistogram::index_of(placements[idx].zone_hours())] += 1;
            }
            assert_eq!(hist, PlacementHistogram::from_zone_counts(&counts));

            let Ok(fit) = MultiRegionFit::fit_k(&hist, k) else {
                continue;
            };
            for c in fit.mixture().components() {
                if let Some((idx, _)) = ref_means
                    .iter()
                    .enumerate()
                    .map(|(i, (m, _))| (i, circular_distance(c.mean, *m)))
                    .filter(|(_, d)| *d <= cfg.match_radius)
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                {
                    samples[idx].push(c.mean);
                }
            }
        }
        let old_style: Vec<ComponentConfidence> = ref_means
            .into_iter()
            .enumerate()
            .map(|(i, (mean, weight))| {
                let n = samples[i].len();
                let std_error = if n > 1 {
                    let m = samples[i].iter().sum::<f64>() / n as f64;
                    (samples[i].iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64).sqrt()
                } else {
                    f64::INFINITY
                };
                ComponentConfidence {
                    mean,
                    weight,
                    std_error,
                    support: n as f64 / cfg.iterations.max(1) as f64,
                }
            })
            .collect();

        for threads in [1usize, 4] {
            assert_eq!(
                old_style,
                bootstrap_components_threads(&placements, &cfg, threads).unwrap(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn circular_distance_wraps() {
        assert_eq!(circular_distance(12.0, -11.0), 1.0);
        assert_eq!(circular_distance(0.0, 12.0), 12.0);
        assert_eq!(circular_distance(-3.0, -3.0), 0.0);
    }
}
