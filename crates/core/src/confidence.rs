//! Bootstrap confidence intervals for mixture components — an extension
//! beyond the paper.
//!
//! The paper reports point estimates for the uncovered time zones. For an
//! investigator, the natural follow-up question is *how sure* the method
//! is: resampling the classified users with replacement and refitting
//! yields an empirical standard error per component mean, turning
//! "the crowd is at UTC+1" into "UTC+1 ± 0.4 h".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crowdtz_stats::StatsError;

use crate::placement::{PlacementHistogram, UserPlacement};
use crate::single::MultiRegionFit;

/// Bootstrap summary for one mixture component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentConfidence {
    /// The reference fit's component mean (zone coordinate).
    pub mean: f64,
    /// The reference fit's mixing weight.
    pub weight: f64,
    /// Bootstrap standard error of the mean.
    pub std_error: f64,
    /// Fraction of bootstrap fits in which a matching component appeared
    /// (within 3 h circularly) — a stability score.
    pub support: f64,
}

/// Configuration for the bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples.
    pub iterations: usize,
    /// RNG seed (the procedure is deterministic given the seed).
    pub seed: u64,
    /// Match radius (hours, circular) when pairing bootstrap components
    /// with reference components.
    pub match_radius: f64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            iterations: 200,
            seed: 0,
            match_radius: 3.0,
        }
    }
}

fn circular_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(24.0);
    d.min(24.0 - d)
}

/// Bootstraps the mixture fit over the classified users.
///
/// Resamples the placements with replacement `iterations` times, refits a
/// mixture with the reference component count each time, and matches each
/// bootstrap component to the nearest reference component (circularly,
/// within `match_radius`).
///
/// # Errors
///
/// Propagates fitting errors; returns [`StatsError::NotEnoughData`] for an
/// empty placement list.
pub fn bootstrap_components(
    placements: &[UserPlacement],
    config: &BootstrapConfig,
) -> Result<Vec<ComponentConfidence>, StatsError> {
    if placements.is_empty() {
        return Err(StatsError::NotEnoughData { got: 0, needed: 1 });
    }
    let reference_hist = PlacementHistogram::from_placements(placements);
    let reference = MultiRegionFit::fit(&reference_hist, 4)?;
    let k = reference.mixture().len();
    let ref_means: Vec<(f64, f64)> = reference
        .mixture()
        .components()
        .iter()
        .map(|c| (c.mean, c.weight))
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB007);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); k];
    for _ in 0..config.iterations {
        let resampled: Vec<UserPlacement> = (0..placements.len())
            .map(|_| placements[rng.gen_range(0..placements.len())].clone())
            .collect();
        let hist = PlacementHistogram::from_placements(&resampled);
        let Ok(fit) = MultiRegionFit::fit_k(&hist, k) else {
            continue;
        };
        for c in fit.mixture().components() {
            // Nearest reference component within the match radius.
            if let Some((idx, _)) = ref_means
                .iter()
                .enumerate()
                .map(|(i, (m, _))| (i, circular_distance(c.mean, *m)))
                .filter(|(_, d)| *d <= config.match_radius)
                .min_by(|a, b| a.1.total_cmp(&b.1))
            {
                samples[idx].push(c.mean);
            }
        }
    }

    Ok(ref_means
        .into_iter()
        .enumerate()
        .map(|(i, (mean, weight))| {
            let n = samples[i].len();
            let std_error = if n > 1 {
                let m = samples[i].iter().sum::<f64>() / n as f64;
                (samples[i].iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64).sqrt()
            } else {
                f64::INFINITY
            };
            ComponentConfidence {
                mean,
                weight,
                std_error,
                support: n as f64 / config.iterations.max(1) as f64,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_placements(mean: f64, sigma: f64, n: usize, tag: &str) -> Vec<UserPlacement> {
        let mut out = Vec::new();
        let mut id = 0usize;
        for k in -11..=12 {
            let z = (f64::from(k) - mean) / sigma;
            let users = ((-0.5 * z * z).exp() * n as f64).round() as usize;
            for _ in 0..users {
                out.push(UserPlacement::new(format!("{tag}{id}"), k, 0.1));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn single_region_bootstrap_is_tight_and_stable() {
        let placements = gaussian_placements(3.0, 2.0, 60, "u");
        let conf = bootstrap_components(
            &placements,
            &BootstrapConfig {
                iterations: 60,
                ..BootstrapConfig::default()
            },
        )
        .unwrap();
        assert_eq!(conf.len(), 1);
        let c = &conf[0];
        assert!((c.mean - 3.0).abs() < 0.5, "mean {}", c.mean);
        assert!(c.std_error < 1.0, "std error {}", c.std_error);
        assert!(c.support > 0.9, "support {}", c.support);
    }

    #[test]
    fn two_region_bootstrap_matches_components() {
        let mut placements = gaussian_placements(1.0, 2.0, 80, "eu");
        placements.extend(gaussian_placements(-6.0, 2.0, 40, "us"));
        let conf = bootstrap_components(
            &placements,
            &BootstrapConfig {
                iterations: 60,
                ..BootstrapConfig::default()
            },
        )
        .unwrap();
        assert_eq!(conf.len(), 2);
        // Heaviest first; both supported and tight.
        assert!(conf[0].weight > conf[1].weight);
        for c in &conf {
            assert!(c.support > 0.8, "support {}", c.support);
            assert!(c.std_error < 1.2, "std error {}", c.std_error);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let placements = gaussian_placements(0.0, 2.0, 40, "u");
        let cfg = BootstrapConfig {
            iterations: 30,
            seed: 9,
            ..BootstrapConfig::default()
        };
        let a = bootstrap_components(&placements, &cfg).unwrap();
        let b = bootstrap_components(&placements, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_errors() {
        assert!(bootstrap_components(&[], &BootstrapConfig::default()).is_err());
    }

    #[test]
    fn circular_distance_wraps() {
        assert_eq!(circular_distance(12.0, -11.0), 1.0);
        assert_eq!(circular_distance(0.0, 12.0), 12.0);
        assert_eq!(circular_distance(-3.0, -3.0), 0.0);
    }
}
