//! Sliding-window analysis and longitudinal drift tracking — the
//! scenario layer the signed-delta ingestion path exists for.
//!
//! A [`WindowedPipeline`] fronts a [`ConcurrentStreamingPipeline`] with
//! a **time-bucketed retraction queue**: every ingested post is also
//! registered under its event-time bucket (`floor(secs / bucket_secs)`),
//! and at publish time every bucket older than the configured window
//! span (measured from the newest bucket ever seen — an event-time high
//! watermark) is retracted through the engine's signed-delta path. The
//! engine therefore always analyzes exactly the posts inside the
//! sliding window, and because retraction is an exact inverse
//! (`shard.rs`), each windowed report is byte-identical to a fresh
//! engine fed only the surviving posts — the invariant
//! `tests/window_identity.rs` pins across writers × shards × grids,
//! with and without durability.
//!
//! On top of the window sits a [`DriftTracker`]: each publish appends a
//! [`DriftPoint`] carrying the zone-composition fractions of the
//! report, the L1 shift of those fractions against a trailing mean of
//! the previous points, and a **change-point flag** raised when the
//! shift exceeds the configured threshold — the per-community
//! time-zone-composition trajectory the ROADMAP's longitudinal-drift
//! item calls for (user-base migration, DST-season re-checks).
//!
//! # Ordering
//!
//! Retraction is only an exact inverse when it runs *after* the ingest
//! that delivered the posts (releasing an unseen post is a skip, not a
//! debt). The pipeline guarantees this by construction: posts enter the
//! queue only via [`track`](WindowedPipeline::track) after their ingest
//! batch returned, and expiry happens at publish under the queue lock.
//! Explicit retraction ([`retract_posts`](WindowedPipeline::retract_posts))
//! also *unregisters* the posts from the queue — otherwise a later
//! expiry would retract them a second time and break the identity (two
//! posts sharing a slot would lose the slot while one still survives).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crowdtz_time::Timestamp;

use crate::concurrent::{ConcurrentStreamingPipeline, IngestWriter, PublishedReport};
use crate::error::CoreError;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of the sliding window and its drift tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowConfig {
    /// Width of one retraction bucket in seconds of event time
    /// (default: one week). Posts are grouped by
    /// `floor(secs / bucket_secs)`.
    pub bucket_secs: i64,
    /// Window span in buckets (default 8): a bucket expires once the
    /// newest tracked bucket is at least this far ahead of it.
    pub window_buckets: usize,
    /// L1 threshold on the zone-fraction shift (against the trailing
    /// mean) above which a publish is flagged as a change-point
    /// (default 0.25; the L1 distance between two distributions ranges
    /// over `[0, 2]`).
    pub drift_threshold: f64,
    /// How many previous trajectory points the trailing mean averages
    /// (default 4).
    pub drift_history: usize,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            bucket_secs: 7 * 86_400,
            window_buckets: 8,
            drift_threshold: 0.25,
            drift_history: 4,
        }
    }
}

/// One point of the longitudinal trajectory: the zone composition at a
/// publish, plus its drift against the trailing mean.
#[derive(Debug, Clone)]
pub struct DriftPoint {
    epoch: u64,
    bucket: i64,
    fractions: Vec<f64>,
    shift: f64,
    changepoint: bool,
}

impl DriftPoint {
    /// The publication epoch this point was recorded at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The event-time high watermark (newest tracked bucket index) at
    /// the publish — the trajectory's x-axis.
    pub fn bucket(&self) -> i64 {
        self.bucket
    }

    /// The report's zone-composition fractions (one per grid zone).
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// `Σ|Δfraction|` against the trailing mean of the previous points
    /// (0 for the first point).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Whether this publish crossed the drift threshold.
    pub fn is_changepoint(&self) -> bool {
        self.changepoint
    }

    /// The dominant zone as `(zone index, fraction)`, if any zone holds
    /// users.
    pub fn dominant(&self) -> Option<(usize, f64)> {
        self.fractions
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .filter(|(_, &f)| f > 0.0)
            .map(|(i, &f)| (i, f))
    }
}

/// Records the per-publish zone-composition trajectory and flags
/// change-points: a point whose L1 distance to the trailing mean of the
/// previous `history` points exceeds `threshold`. Standalone —
/// [`WindowedPipeline`] drives one, but any publish loop can.
#[derive(Debug)]
pub struct DriftTracker {
    history: usize,
    threshold: f64,
    points: Vec<DriftPoint>,
}

impl DriftTracker {
    /// A tracker averaging the last `history` points (min 1) with the
    /// given change-point threshold.
    pub fn new(history: usize, threshold: f64) -> DriftTracker {
        DriftTracker {
            history: history.max(1),
            threshold,
            points: Vec::new(),
        }
    }

    /// Appends one trajectory point and returns it. The first point is
    /// never a change-point (there is no history to drift from).
    pub fn record(&mut self, epoch: u64, bucket: i64, fractions: Vec<f64>) -> &DriftPoint {
        let tail_start = self.points.len().saturating_sub(self.history);
        let tail = &self.points[tail_start..];
        let shift = if tail.is_empty() {
            0.0
        } else {
            let mut mean = vec![0.0f64; fractions.len()];
            for p in tail {
                for (m, f) in mean.iter_mut().zip(&p.fractions) {
                    *m += f;
                }
            }
            let n = tail.len() as f64;
            mean.iter()
                .zip(&fractions)
                .map(|(m, f)| (m / n - f).abs())
                .sum()
        };
        let changepoint = !tail.is_empty() && shift > self.threshold;
        self.points.push(DriftPoint {
            epoch,
            bucket,
            fractions,
            shift,
            changepoint,
        });
        self.points.last().expect("just pushed")
    }

    /// The full trajectory, in publish order.
    pub fn points(&self) -> &[DriftPoint] {
        &self.points
    }

    /// The trajectory points flagged as change-points.
    pub fn changepoints(&self) -> Vec<&DriftPoint> {
        self.points.iter().filter(|p| p.changepoint).collect()
    }
}

/// The retraction queue: live posts pending expiry, keyed by event-time
/// bucket, plus the high watermark expiry is measured from.
#[derive(Debug, Default)]
struct WindowState {
    buckets: BTreeMap<i64, Vec<(String, Timestamp)>>,
    /// Newest bucket ever tracked (event time, not wall time): buckets
    /// at or below `max_bucket − window_buckets` are expired.
    max_bucket: Option<i64>,
}

/// Observability handles (`window.*`), resolved once at construction.
#[derive(Debug)]
struct WindowObs {
    observer: Arc<crowdtz_obs::Observer>,
    /// `window.retractions`: posts retracted (expiry + explicit).
    retractions: crowdtz_obs::Counter,
    /// `window.expired_buckets`: buckets auto-retracted at publish.
    expired_buckets: crowdtz_obs::Counter,
    /// `window.changepoints`: publishes flagged by the drift tracker.
    changepoints: crowdtz_obs::Counter,
}

/// A sliding-window front over the concurrent engine: tracks ingested
/// posts in event-time buckets, auto-retracts expired buckets at
/// publish, and records the drift trajectory. See the module docs.
#[derive(Debug)]
pub struct WindowedPipeline {
    engine: ConcurrentStreamingPipeline,
    config: WindowConfig,
    state: Mutex<WindowState>,
    tracker: Mutex<DriftTracker>,
    /// Dedicated writer for expiry batches, registered once so repeated
    /// publishes do not grow the engine's watermark vector.
    retractor: IngestWriter,
    obs: Option<WindowObs>,
}

impl WindowedPipeline {
    /// Wraps an engine (cheap handle clone) with the given window
    /// config. `observer` attaches the `window.*` metrics and the
    /// `window.publish` span; pass the same observer the engine uses.
    /// `bucket_secs` and `window_buckets` are clamped to ≥ 1.
    pub fn new(
        engine: ConcurrentStreamingPipeline,
        config: WindowConfig,
        observer: Option<Arc<crowdtz_obs::Observer>>,
    ) -> WindowedPipeline {
        let config = WindowConfig {
            bucket_secs: config.bucket_secs.max(1),
            window_buckets: config.window_buckets.max(1),
            ..config
        };
        let tracker = DriftTracker::new(config.drift_history, config.drift_threshold);
        let retractor = engine.writer();
        let obs = observer.map(|observer| WindowObs {
            retractions: observer.counter("window.retractions"),
            expired_buckets: observer.counter("window.expired_buckets"),
            changepoints: observer.counter("window.changepoints"),
            observer,
        });
        WindowedPipeline {
            engine,
            config,
            state: Mutex::new(WindowState::default()),
            tracker: Mutex::new(tracker),
            retractor,
            obs,
        }
    }

    /// The fronted engine (for registering writers, wait-free snapshot
    /// reads, durable checkpoints).
    pub fn engine(&self) -> &ConcurrentStreamingPipeline {
        &self.engine
    }

    /// The window configuration (after clamping).
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// The bucket index a timestamp falls into.
    pub fn bucket_of(&self, ts: Timestamp) -> i64 {
        ts.as_secs().div_euclid(self.config.bucket_secs)
    }

    /// Posts currently tracked in the retraction queue (not yet
    /// expired or explicitly retracted).
    pub fn pending_posts(&self) -> usize {
        relock(&self.state).buckets.values().map(Vec::len).sum()
    }

    /// Registers already-ingested posts in the retraction queue. Call
    /// after the ingest batch that delivered them returned — the queue
    /// must never get ahead of the engine, or expiry would retract
    /// posts the shards have not absorbed (a silent skip that breaks
    /// the window, see the module docs on ordering).
    pub fn track(&self, posts: &[(&str, Timestamp)]) {
        if posts.is_empty() {
            return;
        }
        let mut state = relock(&self.state);
        for &(user, ts) in posts {
            let bucket = self.bucket_of(ts);
            state
                .buckets
                .entry(bucket)
                .or_default()
                .push((user.to_owned(), ts));
            state.max_bucket = Some(state.max_bucket.map_or(bucket, |m| m.max(bucket)));
        }
    }

    /// Ingests posts through `writer` and tracks them in one call — the
    /// convenience most callers want.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] in durable mode when the write-ahead append
    /// fails; the queue is only updated on success.
    pub fn ingest_posts(
        &self,
        writer: &IngestWriter,
        posts: &[(&str, Timestamp)],
    ) -> Result<(), CoreError> {
        writer.ingest_posts_ref(posts)?;
        self.track(posts);
        Ok(())
    }

    /// Explicitly retracts posts (a moderation takedown, a dedup fix):
    /// removes them from the retraction queue, then releases **exactly
    /// the entries that were still tracked** from the engine through
    /// `writer`'s signed path. Posts no longer in the queue (already
    /// expired, or retracted before) are skipped — retracting them
    /// again would strip slots that surviving posts still hold. Returns
    /// how many posts were retracted.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] in durable mode when the write-ahead append
    /// fails.
    pub fn retract_posts(
        &self,
        writer: &IngestWriter,
        posts: &[(&str, Timestamp)],
    ) -> Result<usize, CoreError> {
        if posts.is_empty() {
            return Ok(0);
        }
        let live = self.untrack(posts);
        if live.is_empty() {
            return Ok(0);
        }
        let refs: Vec<(&str, Timestamp)> = live.iter().map(|(u, t)| (u.as_str(), *t)).collect();
        writer.retract_posts_ref(&refs)?;
        if let Some(obs) = &self.obs {
            obs.retractions.add(live.len() as u64);
        }
        Ok(live.len())
    }

    /// Removes the first queue entry matching each `(user, timestamp)`
    /// pair, returning the entries that were actually tracked (posts
    /// already expired are simply gone and must not be released again).
    fn untrack(&self, posts: &[(&str, Timestamp)]) -> Vec<(String, Timestamp)> {
        let mut state = relock(&self.state);
        let mut removed = Vec::new();
        for &(user, ts) in posts {
            let bucket = self.bucket_of(ts);
            if let Some(entries) = state.buckets.get_mut(&bucket) {
                if let Some(i) = entries
                    .iter()
                    .position(|(u, t)| u == user && t.as_secs() == ts.as_secs())
                {
                    removed.push(entries.swap_remove(i));
                    if entries.is_empty() {
                        state.buckets.remove(&bucket);
                    }
                }
            }
        }
        removed
    }

    /// Publishes a windowed report: expires every bucket older than the
    /// window span (retracting its posts through the engine's signed
    /// path), publishes through the engine's consistent cut, and
    /// records the drift-trajectory point. Concurrent publishes
    /// serialize on the queue lock, so expiry and cut always pair up.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyCrowd`] when no user survives inside the
    ///   window.
    /// * [`CoreError::Stats`] when a fit fails.
    /// * [`CoreError::Store`] when a WAL append or due rotation fails.
    pub fn publish(&self) -> Result<Arc<PublishedReport>, CoreError> {
        self.publish_with_coverage(1.0)
    }

    /// [`publish`](Self::publish) for a partial crawl.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidCoverage`] when `coverage` is outside
    /// `(0, 1]`, plus everything [`publish`](Self::publish) returns.
    pub fn publish_with_coverage(&self, coverage: f64) -> Result<Arc<PublishedReport>, CoreError> {
        let observer = self.obs.as_ref().map(|o| Arc::clone(&o.observer));
        let _s = crowdtz_obs::span!(observer, "window.publish");
        // Hold the queue lock through expiry + publish: a concurrent
        // publish cannot interleave its cut between our retraction and
        // our snapshot. Writers calling track() block only briefly.
        let mut state = relock(&self.state);
        if let Some(max_bucket) = state.max_bucket {
            let cutoff = max_bucket - self.config.window_buckets as i64 + 1;
            let mut expired_posts: Vec<(String, Timestamp)> = Vec::new();
            let mut expired_buckets = 0u64;
            while let Some(entry) = state.buckets.first_entry() {
                if *entry.key() >= cutoff {
                    break;
                }
                expired_buckets += 1;
                expired_posts.extend(entry.remove());
            }
            if !expired_posts.is_empty() {
                let refs: Vec<(&str, Timestamp)> = expired_posts
                    .iter()
                    .map(|(u, t)| (u.as_str(), *t))
                    .collect();
                self.retractor.retract_posts_ref(&refs)?;
                if let Some(obs) = &self.obs {
                    obs.expired_buckets.add(expired_buckets);
                    obs.retractions.add(expired_posts.len() as u64);
                }
            }
        }
        let published = self.engine.publish_with_coverage(coverage)?;
        let bucket = state.max_bucket.unwrap_or(0);
        let point_is_changepoint = {
            let mut tracker = relock(&self.tracker);
            let fractions = published.report().histogram().fractions().to_vec();
            tracker
                .record(published.epoch(), bucket, fractions)
                .is_changepoint()
        };
        if point_is_changepoint {
            if let Some(obs) = &self.obs {
                obs.changepoints.inc();
            }
        }
        Ok(published)
    }

    /// The drift trajectory recorded so far, in publish order.
    pub fn trajectory(&self) -> Vec<DriftPoint> {
        relock(&self.tracker).points().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GeolocationPipeline;

    fn pipeline() -> GeolocationPipeline {
        GeolocationPipeline::default().min_posts(1).threads(1)
    }

    /// `n` daily posts for `user` at `hour`, starting at day `day0`.
    fn daily(day0: i64, hour: u8, n: usize) -> Vec<Timestamp> {
        (0..n as i64)
            .map(|d| Timestamp::from_secs((day0 + d) * 86_400 + i64::from(hour) * 3_600))
            .collect()
    }

    fn windowed(bucket_days: i64, window_buckets: usize) -> WindowedPipeline {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        WindowedPipeline::new(
            engine,
            WindowConfig {
                bucket_secs: bucket_days * 86_400,
                window_buckets,
                ..WindowConfig::default()
            },
            None,
        )
    }

    #[test]
    fn expiry_matches_engine_fed_only_surviving_posts() {
        // 2-day buckets, window of 2 buckets: posts from days 0–1
        // expire once days 4–5 arrive.
        let window = windowed(2, 2);
        let writer = window.engine().writer();
        let old: Vec<(String, Timestamp)> = daily(0, 20, 2)
            .into_iter()
            .map(|t| ("alice".to_owned(), t))
            .collect();
        let new: Vec<(String, Timestamp)> = daily(4, 9, 2)
            .into_iter()
            .map(|t| ("bob".to_owned(), t))
            .collect();
        for batch in [&old, &new] {
            let refs: Vec<(&str, Timestamp)> =
                batch.iter().map(|(u, t)| (u.as_str(), *t)).collect();
            window.ingest_posts(&writer, &refs).unwrap();
        }
        let published = window.publish().unwrap();
        let fresh = ConcurrentStreamingPipeline::new(pipeline());
        fresh.writer().ingest_posts(&new).unwrap();
        let expected = fresh.publish().unwrap();
        assert_eq!(
            serde_json::to_string(published.report()).unwrap(),
            serde_json::to_string(expected.report()).unwrap()
        );
        assert_eq!(window.pending_posts(), 2, "only the new bucket remains");
    }

    #[test]
    fn explicit_retraction_prevents_double_expiry() {
        // Two posts share a slot; explicitly retracting one must not
        // let the later expiry retract it again (which would strip the
        // slot the surviving post still holds).
        let window = windowed(1, 1);
        let writer = window.engine().writer();
        let t = Timestamp::from_secs(20 * 3_600);
        window.ingest_posts(&writer, &[("u", t), ("u", t)]).unwrap();
        window.retract_posts(&writer, &[("u", t)]).unwrap();
        assert_eq!(window.pending_posts(), 1);
        let published = window.publish().unwrap();
        assert_eq!(published.report().profiles()[0].post_count(), 1);
        assert_eq!(published.report().profiles()[0].active_slots(), 1);
    }

    #[test]
    fn retraction_of_untracked_posts_is_skipped() {
        let window = windowed(1, 1);
        let writer = window.engine().writer();
        let t = Timestamp::from_secs(20 * 3_600);
        window.ingest_posts(&writer, &[("u", t), ("u", t)]).unwrap();
        // The queue holds two copies: two retracts succeed, the third
        // finds nothing tracked and must not touch the engine.
        assert_eq!(window.retract_posts(&writer, &[("u", t)]).unwrap(), 1);
        assert_eq!(window.retract_posts(&writer, &[("u", t)]).unwrap(), 1);
        assert_eq!(window.retract_posts(&writer, &[("u", t)]).unwrap(), 0);
        assert_eq!(window.pending_posts(), 0);
    }

    #[test]
    fn expired_posts_cannot_be_retracted_twice() {
        // 30-minute buckets: posts at 20:00 and 20:30 share the hourly
        // accumulator slot but live in different buckets. After 20:00
        // expires, an explicit retract of it must NOT strip the slot the
        // 20:30 post still holds.
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        let window = WindowedPipeline::new(
            engine,
            WindowConfig {
                bucket_secs: 1_800,
                window_buckets: 2,
                ..WindowConfig::default()
            },
            None,
        );
        let writer = window.engine().writer();
        let a = Timestamp::from_secs(20 * 3_600);
        let b = Timestamp::from_secs(20 * 3_600 + 1_800);
        let c = Timestamp::from_secs(21 * 3_600);
        window.ingest_posts(&writer, &[("u", a), ("u", b)]).unwrap();
        window.ingest_posts(&writer, &[("v", c)]).unwrap();
        window.publish().unwrap(); // expires only `a`
        assert_eq!(window.retract_posts(&writer, &[("u", a)]).unwrap(), 0);
        let published = window.publish().unwrap();
        let fresh = ConcurrentStreamingPipeline::new(pipeline());
        fresh
            .writer()
            .ingest_posts(&[("u".to_owned(), b), ("v".to_owned(), c)])
            .unwrap();
        let expected = fresh.publish().unwrap();
        assert_eq!(
            serde_json::to_string(published.report()).unwrap(),
            serde_json::to_string(expected.report()).unwrap()
        );
    }

    #[test]
    fn drift_tracker_flags_a_composition_shift() {
        let mut tracker = DriftTracker::new(3, 0.5);
        let mut east = vec![0.0; 24];
        east[2] = 1.0;
        let mut west = vec![0.0; 24];
        west[20] = 1.0;
        for epoch in 1..=4 {
            let p = tracker.record(epoch, epoch as i64, east.clone());
            assert!(!p.is_changepoint(), "stable trajectory at {epoch}");
        }
        let p = tracker.record(5, 5, west.clone()).clone();
        assert!(p.is_changepoint(), "full shift must flag");
        assert!((p.shift() - 2.0).abs() < 1e-12, "disjoint L1 is 2");
        assert_eq!(tracker.changepoints().len(), 1);
        assert_eq!(tracker.points().len(), 5);
        assert_eq!(p.dominant(), Some((20, 1.0)));
    }

    #[test]
    fn window_never_expires_inside_the_span() {
        let window = windowed(1, 10);
        let writer = window.engine().writer();
        for day in 0..5i64 {
            let posts: Vec<(String, Timestamp)> = daily(day, 12, 1)
                .into_iter()
                .map(|t| (format!("u{day}"), t))
                .collect();
            let refs: Vec<(&str, Timestamp)> =
                posts.iter().map(|(u, t)| (u.as_str(), *t)).collect();
            window.ingest_posts(&writer, &refs).unwrap();
        }
        window.publish().unwrap();
        assert_eq!(window.pending_posts(), 5, "nothing expired");
        assert_eq!(window.trajectory().len(), 1);
    }
}
