//! Hemisphere detection from daylight-saving shifts — §V.F.
//!
//! Northern regions run DST roughly March→October, southern regions
//! roughly October→February. A user's *local* rhythm is constant, so their
//! **UTC** profile shifts by one hour between the DST and standard
//! seasons — in opposite directions in the two hemispheres:
//!
//! * **north**: winter profile ≈ summer profile shifted **forward** 1 h;
//! * **south**: winter profile ≈ summer profile shifted **backward** 1 h;
//! * **no DST**: the two seasonal profiles match unshifted.
//!
//! To keep the signal clean we compare *core-season* windows
//! (December–January vs June–August), the months whose DST state is
//! unambiguous under every rule in the region database.

use std::fmt;

use serde::{Deserialize, Serialize};

use crowdtz_stats::circular_emd;
use crowdtz_time::{Hemisphere, Timestamp, TzOffset, UserTrace};

use crate::profile::ActivityProfile;

/// Tuning parameters for the hemisphere classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HemisphereConfig {
    /// Minimum active (day, hour) slots required in *each* seasonal window.
    pub min_slots_per_season: usize,
    /// A shifted match must beat the unshifted distance by this relative
    /// margin to call a hemisphere (guards against noise).
    pub margin: f64,
}

impl Default for HemisphereConfig {
    fn default() -> HemisphereConfig {
        HemisphereConfig {
            min_slots_per_season: 10,
            // Calibrated on the synthetic world: seasonal-profile EMD
            // noise is large below ~1000 active slots, so a hemisphere is
            // only called when the shifted comparison improves on the
            // unshifted one by ≥30% (and beats the ±2 h control shifts).
            // Saturated users separate cleanly (genuine DST ratios reach
            // ~0.2, no-DST ratios sit near 1); at moderate activity this
            // margin keeps the no-DST false-positive rate ≈5% while
            // retaining most genuine verdicts — abstention, not error, is
            // the failure mode, matching the paper's restriction to the
            // most active users.
            margin: 0.30,
        }
    }
}

/// The classifier's verdict for one user, with the evidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HemisphereVerdict {
    /// The inferred hemisphere ([`Hemisphere::Unknown`] = no DST signal).
    pub hemisphere: Hemisphere,
    /// EMD(winter, summer shifted +1 h) — small for northern users.
    pub d_forward: f64,
    /// EMD(winter, summer shifted −1 h) — small for southern users.
    pub d_backward: f64,
    /// EMD(winter, summer unshifted) — small for no-DST users.
    pub d_unshifted: f64,
    /// Active slots in the winter window.
    pub winter_slots: usize,
    /// Active slots in the summer window.
    pub summer_slots: usize,
}

impl fmt::Display for HemisphereVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (d+1={:.3}, d-1={:.3}, d0={:.3})",
            self.hemisphere, self.d_forward, self.d_backward, self.d_unshifted
        )
    }
}

/// Splits a trace into the core winter (Nov–Jan) and summer (May–Sep)
/// sub-traces by UTC month.
///
/// These months have a near-unambiguous DST state under every rule in the
/// region database: northern rules (EU, US) are on standard time across
/// November–January and on DST across May–September, while the southern
/// rules (Brazil, Paraguay, Australia) are the exact opposite. The only
/// dilution is the first US week of November; wider windows would pick up
/// whole transition weeks (Brazil already leaves DST in mid-February,
/// Paraguay only in late March), blurring the one-hour signature.
fn seasonal_split(trace: &UserTrace) -> (UserTrace, UserTrace) {
    let mut winter = Vec::new();
    let mut summer = Vec::new();
    for &ts in trace.posts() {
        let Ok(civil) = ts.to_civil_utc() else {
            continue;
        };
        match civil.date().month_number() {
            11 | 12 | 1 => winter.push(ts),
            5..=9 => summer.push(ts),
            _ => {}
        }
    }
    (
        UserTrace::new(format!("{}#winter", trace.id()), winter),
        UserTrace::new(format!("{}#summer", trace.id()), summer),
    )
}

/// Classifies one user's hemisphere from the DST signature in their trace.
///
/// Returns `None` when either seasonal window has too little activity to
/// compare (the paper restricts this analysis to the most active users for
/// the same reason).
pub fn classify_user(trace: &UserTrace, config: &HemisphereConfig) -> Option<HemisphereVerdict> {
    let (winter, summer) = seasonal_split(trace);
    let wp = ActivityProfile::from_trace_offset(&winter, TzOffset::UTC)?;
    let sp = ActivityProfile::from_trace_offset(&summer, TzOffset::UTC)?;
    if wp.active_slots() < config.min_slots_per_season
        || sp.active_slots() < config.min_slots_per_season
    {
        return None;
    }
    let w = wp.distribution();
    let s = sp.distribution();
    let d_forward = circular_emd(w, &s.shifted(1));
    let d_backward = circular_emd(w, &s.shifted(-1));
    let d_unshifted = circular_emd(w, s);
    // Control shifts: DST moves clocks by exactly one hour, so a genuine
    // signature puts the minimum at ±1 h. The ±2 h distances give a
    // per-user noise floor — sampling noise that happens to prefer *some*
    // shift rarely prefers ±1 specifically over ±2.
    let d_control = circular_emd(w, &s.shifted(2)).min(circular_emd(w, &s.shifted(-2)));

    let margin = 1.0 - config.margin;
    let beats_null = |d: f64| d < d_unshifted * margin && d <= d_control;
    let hemisphere = if d_forward < d_backward && beats_null(d_forward) {
        Hemisphere::Northern
    } else if d_backward < d_forward && beats_null(d_backward) {
        Hemisphere::Southern
    } else {
        Hemisphere::Unknown
    };
    Some(HemisphereVerdict {
        hemisphere,
        d_forward,
        d_backward,
        d_unshifted,
        winter_slots: wp.active_slots(),
        summer_slots: sp.active_slots(),
    })
}

/// Classifies the `n` most active users of a crowd (the paper uses the top
/// five), returning `(user id, verdict)` pairs for those with enough
/// seasonal activity.
pub fn classify_most_active(
    traces: &crowdtz_time::TraceSet,
    n: usize,
    config: &HemisphereConfig,
) -> Vec<(String, HemisphereVerdict)> {
    traces
        .most_active(n)
        .into_iter()
        .filter_map(|t| classify_user(t, config).map(|v| (t.id().to_owned(), v)))
        .collect()
}

/// Helper for tests and experiments: counts verdicts per hemisphere.
pub fn tally(verdicts: &[(String, HemisphereVerdict)]) -> (usize, usize, usize) {
    let mut n = 0;
    let mut s = 0;
    let mut u = 0;
    for (_, v) in verdicts {
        match v.hemisphere {
            Hemisphere::Northern => n += 1,
            Hemisphere::Southern => s += 1,
            Hemisphere::Unknown => u += 1,
        }
    }
    (n, s, u)
}

/// Convenience used by tests: extracts the window of a timestamp.
#[doc(hidden)]
pub fn is_winter_month(ts: Timestamp) -> bool {
    matches!(
        ts.to_civil_utc().map(|c| c.date().month_number()),
        Ok(11) | Ok(12) | Ok(1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtz_time::{CivilDateTime, Date, DstRule, Zone};

    /// A user with a fixed local rhythm living in `zone`, posting at the
    /// given local hours every third day of 2016.
    fn seasonal_user(zone: Zone) -> UserTrace {
        let mut posts = Vec::new();
        let start = Date::new(2016, 1, 1).unwrap();
        let end = Date::new(2016, 12, 31).unwrap();
        for (i, date) in start.iter_to(end).enumerate() {
            if i % 3 != 0 {
                continue;
            }
            for hour in [8u8, 13, 20, 21] {
                let local = CivilDateTime::from_date_time(date, hour, 15, 0).unwrap();
                if let Ok(ts) = zone.from_local(local) {
                    posts.push(ts);
                }
            }
        }
        UserTrace::new("u", posts)
    }

    #[test]
    fn northern_user_detected() {
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let verdict = classify_user(&seasonal_user(berlin), &HemisphereConfig::default()).unwrap();
        assert_eq!(verdict.hemisphere, Hemisphere::Northern, "{verdict}");
        assert!(verdict.d_forward < verdict.d_backward);
    }

    #[test]
    fn us_northern_user_detected() {
        let chicago = Zone::us(TzOffset::from_hours(-6).unwrap());
        let verdict = classify_user(&seasonal_user(chicago), &HemisphereConfig::default()).unwrap();
        assert_eq!(verdict.hemisphere, Hemisphere::Northern, "{verdict}");
    }

    #[test]
    fn southern_user_detected() {
        let sao_paulo = Zone::with_dst(TzOffset::from_hours(-3).unwrap(), DstRule::brazil());
        let verdict =
            classify_user(&seasonal_user(sao_paulo), &HemisphereConfig::default()).unwrap();
        assert_eq!(verdict.hemisphere, Hemisphere::Southern, "{verdict}");
        assert!(verdict.d_backward < verdict.d_forward);
    }

    #[test]
    fn australian_user_detected_southern() {
        let sydney = Zone::with_dst(TzOffset::from_hours(10).unwrap(), DstRule::australia_nsw());
        let verdict = classify_user(&seasonal_user(sydney), &HemisphereConfig::default()).unwrap();
        assert_eq!(verdict.hemisphere, Hemisphere::Southern, "{verdict}");
    }

    #[test]
    fn no_dst_user_is_unknown() {
        let tokyo = Zone::fixed(TzOffset::from_hours(9).unwrap());
        let verdict = classify_user(&seasonal_user(tokyo), &HemisphereConfig::default()).unwrap();
        assert_eq!(verdict.hemisphere, Hemisphere::Unknown, "{verdict}");
    }

    #[test]
    fn sparse_user_returns_none() {
        let trace = UserTrace::new(
            "sparse",
            vec![Timestamp::from_civil_utc(
                CivilDateTime::new(2016, 1, 5, 12, 0, 0).unwrap(),
            )],
        );
        assert!(classify_user(&trace, &HemisphereConfig::default()).is_none());
    }

    #[test]
    fn classify_most_active_filters_and_orders() {
        let mut traces = crowdtz_time::TraceSet::new();
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        traces.insert(UserTrace::new(
            "big",
            seasonal_user(berlin).posts().to_vec(),
        ));
        traces.insert(UserTrace::new(
            "tiny",
            vec![Timestamp::from_secs(1_460_000_000)],
        ));
        let verdicts = classify_most_active(&traces, 5, &HemisphereConfig::default());
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].0, "big");
        let (n, s, u) = tally(&verdicts);
        assert_eq!((n, s, u), (1, 0, 0));
    }

    #[test]
    fn every_dst_rule_and_offset_classifies_correctly() {
        // Sweep standard offsets for each DST family: the verdict must be
        // correct (never contradictory, and for these clean high-volume
        // synthetic users, never an abstention either).
        for std_offset in [-8i32, -6, -3, 0, 1, 2, 10] {
            let off = TzOffset::from_hours(std_offset).unwrap();
            for (rule, expected) in [
                (DstRule::eu(), Hemisphere::Northern),
                (DstRule::us(), Hemisphere::Northern),
                (DstRule::brazil(), Hemisphere::Southern),
                (DstRule::paraguay(), Hemisphere::Southern),
                (DstRule::australia_nsw(), Hemisphere::Southern),
            ] {
                let zone = Zone::with_dst(off, rule);
                let verdict =
                    classify_user(&seasonal_user(zone), &HemisphereConfig::default()).unwrap();
                assert_eq!(
                    verdict.hemisphere, expected,
                    "offset {std_offset}, rule {rule}: {verdict}"
                );
            }
            // Fixed zones must abstain.
            let verdict = classify_user(
                &seasonal_user(Zone::fixed(off)),
                &HemisphereConfig::default(),
            )
            .unwrap();
            assert_eq!(
                verdict.hemisphere,
                Hemisphere::Unknown,
                "offset {std_offset} fixed: {verdict}"
            );
        }
    }

    #[test]
    fn equator_adjacent_fixed_zones_abstain() {
        // Zones in the equatorial band (UTC−1..UTC+1) rarely observe DST;
        // the classifier must abstain rather than infer a hemisphere from
        // the offset alone, and the unshifted comparison must win.
        for off in [-1i32, 0, 1] {
            let zone = Zone::fixed(TzOffset::from_hours(off).unwrap());
            let verdict =
                classify_user(&seasonal_user(zone), &HemisphereConfig::default()).unwrap();
            assert_eq!(
                verdict.hemisphere,
                Hemisphere::Unknown,
                "offset {off}: {verdict}"
            );
            assert!(
                verdict.d_unshifted <= verdict.d_forward.min(verdict.d_backward),
                "offset {off}: {verdict}"
            );
        }
    }

    #[test]
    fn mirrored_dst_rule_flips_the_verdict_symmetrically() {
        // Swapping a rule's transitions moves the DST period to the other
        // side of the year: the user's winter and summer UTC profiles
        // trade places, so the verdict flips and the two shifted distances
        // swap. The core-season windows (Nov–Jan / May–Sep) sit strictly
        // inside both rules' DST and standard periods, so the symmetry is
        // exact, not approximate.
        let off = TzOffset::from_hours(0).unwrap();
        let eu = DstRule::eu();
        let mirror = DstRule::new(eu.end(), eu.start(), eu.shift_secs());
        assert!(mirror.is_southern());
        let config = HemisphereConfig::default();
        let north = classify_user(&seasonal_user(Zone::with_dst(off, eu)), &config).unwrap();
        let south = classify_user(&seasonal_user(Zone::with_dst(off, mirror)), &config).unwrap();
        assert_eq!(north.hemisphere, Hemisphere::Northern, "{north}");
        assert_eq!(south.hemisphere, Hemisphere::Southern, "{south}");
        assert!((north.d_forward - south.d_backward).abs() < 1e-12);
        assert!((north.d_backward - south.d_forward).abs() < 1e-12);
        assert!((north.d_unshifted - south.d_unshifted).abs() < 1e-12);
    }

    #[test]
    fn seasonal_split_excludes_transition_months() {
        let ts =
            |m: u8| Timestamp::from_civil_utc(CivilDateTime::new(2016, m, 15, 12, 0, 0).unwrap());
        let trace = UserTrace::new("u", (1..=12).map(ts).collect());
        let (winter, summer) = seasonal_split(&trace);
        assert_eq!(winter.len(), 3); // Nov, Dec, Jan
        assert_eq!(summer.len(), 5); // May–Sep
        assert!(is_winter_month(ts(12)));
        assert!(!is_winter_month(ts(6)));
    }
}
