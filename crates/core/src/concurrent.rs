//! Concurrent multi-writer ingestion with wait-free snapshot reads.
//!
//! [`ConcurrentStreamingPipeline`] fronts one [`StreamingPipeline`] with
//! the locking the ROADMAP's "serve it" item calls for: many `Monitor`s
//! (or any producer threads) feed one shared engine through
//! [`IngestWriter`] handles, while readers consume published reports
//! without ever touching a writer-visible lock. Three layers, with a
//! strict lock order (DESIGN.md §15):
//!
//! 1. **The batch gate** — an `RwLock` around the engine. Writers hold
//!    the *read* side for exactly one batch, so any number of writers
//!    ingest simultaneously; [`publish`](ConcurrentStreamingPipeline::publish)
//!    takes the *write* side, which is a consistent cut: every batch is
//!    either fully applied or not yet started when the snapshot runs.
//! 2. **Per-shard mutexes** (`shard.rs`) — inside the read gate, a batch
//!    routes users by the stable FNV hash and locks **one shard at a
//!    time**, so writers touching different shards never contend, and
//!    the lock order (gate → WAL → one shard) is trivially cycle-free.
//! 3. **The published cell** — an epoch/`Arc`-swap double buffer.
//!    [`snapshot`](ConcurrentStreamingPipeline::snapshot) clones the
//!    newest published `Arc` without acquiring the gate: readers never
//!    block writers and writers never block readers.
//!
//! # Determinism under concurrency
//!
//! Published reports are **byte-identical** (through `serde_json`) to
//! the single-owner `&mut` path fed the same cumulative deltas, for any
//! writer count × shard count × grid, with or without durability.
//! The argument, pinned by `tests/concurrent_determinism.rs`:
//!
//! * A delta is a slot-set union plus integer adds
//!   (`UserAccumulator::absorb`), so deltas **commute** — the final
//!   accumulator state does not depend on the interleaving.
//! * Each shard keeps a monotonic sequence number, and refresh drains
//!   dirty ids in **globally sorted order** — the merge order is fixed,
//!   not arrival order.
//! * Everything downstream of the accumulators (profiles, placements,
//!   zone counts, fits) is a pure function of that state; the shared
//!   striped placement cache is byte-transparent
//!   ([`SharedPlacementCache`]).
//!
//! Additionally, each writer carries a monotonic **watermark** (batches
//! fully applied), bumped *inside* its gate hold. A publish captures the
//! watermark vector under the write gate, so every published report
//! names the exact per-writer batch prefix it reflects — which is what
//! makes the snapshot-during-ingest consistency property testable:
//! replaying exactly those prefixes sequentially reproduces the report
//! byte for byte.
//!
//! # Durable mode
//!
//! [`ConcurrentStreamingPipeline::open_durable`] recovers through the
//! normal [`StreamingPipeline::open_durable_with`] path, then re-homes
//! the store behind a WAL mutex *inside* the gate. A writer's batch is
//! appended and fsynced under gate-read + WAL-lock *before* the shard
//! apply (the same write-ahead contract as the sequential
//! [`DurableStreamingPipeline`](crate::DurableStreamingPipeline)), and
//! snapshot rotation runs only under the write gate — so at rotation the
//! in-memory state equals the logged state exactly, and recovery is
//! unchanged.
//!
//! ```
//! use crowdtz_core::{ConcurrentStreamingPipeline, GeolocationPipeline};
//! use crowdtz_time::Timestamp;
//!
//! let engine = ConcurrentStreamingPipeline::new(
//!     GeolocationPipeline::default().min_posts(1).threads(1),
//! );
//! std::thread::scope(|scope| {
//!     for w in 0..4 {
//!         let writer = engine.writer();
//!         scope.spawn(move || {
//!             for day in 0..10i64 {
//!                 let post = Timestamp::from_secs(day * 86_400 + 20 * 3_600);
//!                 writer.ingest(&format!("u{w}"), &[post]).unwrap();
//!             }
//!         });
//!     }
//! });
//! let published = engine.publish().unwrap();
//! assert_eq!(published.report().profiles().len(), 4);
//! // Wait-free read of the newest published report:
//! assert_eq!(engine.snapshot().unwrap().epoch(), published.epoch());
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use crowdtz_store::{DurableStore, RealVfs, Vfs};
use crowdtz_time::Timestamp;

use crate::durable::{build_snapshot_parts, encode_plain_batch, encode_retract_batch};
use crate::engine::SharedPlacementCache;
use crate::error::CoreError;
use crate::pipeline::{GeolocationPipeline, GeolocationReport};
use crate::shard::SharedIngestObs;
use crate::streaming::StreamingPipeline;

/// Bucket bounds for the `ingest.lock_wait_ns` histogram: nanoseconds a
/// writer spent blocked on a contended gate or shard lock, from "one
/// cache miss" to "someone held the write gate through a full refresh".
const LOCK_WAIT_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Reacquire helpers with the workspace poisoning policy: all state
/// behind these locks is either plain data updated batch-atomically or
/// re-derivable, so a panicked former holder is survivable.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_gate<T>(gate: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    gate.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_gate<T>(gate: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    gate.write().unwrap_or_else(PoisonError::into_inner)
}

/// Observability handles, resolved once so the per-batch cost is an
/// atomic add per metric, not a registry lookup.
#[derive(Debug)]
struct ConcurrentObs {
    /// Shard-level handles threaded into `ShardSet::ingest_batch_shared`.
    shared: SharedIngestObs,
    /// `ingest.gate_contention`: batch-gate acquisitions that blocked
    /// (a publish was running or pending).
    gate_contention: crowdtz_obs::Counter,
    /// `ingest.batches`: writer batches fully applied.
    batches: crowdtz_obs::Counter,
    /// `ingest.publishes`: reports published through the cell.
    publishes: crowdtz_obs::Counter,
    /// `ingest.writers`: currently registered [`IngestWriter`] handles.
    writers: crowdtz_obs::Gauge,
}

impl ConcurrentObs {
    fn new(observer: &crowdtz_obs::Observer) -> ConcurrentObs {
        ConcurrentObs {
            shared: SharedIngestObs {
                lock_wait: observer.histogram("ingest.lock_wait_ns", LOCK_WAIT_BOUNDS),
                shard_contention: observer.counter("ingest.shard_contention"),
            },
            gate_contention: observer.counter("ingest.gate_contention"),
            batches: observer.counter("ingest.batches"),
            publishes: observer.counter("ingest.publishes"),
            writers: observer.gauge("ingest.writers"),
        }
    }
}

/// The durable half of the engine, serialized behind its own mutex
/// *inside* the gate: appends from concurrent writers interleave at
/// batch granularity (each record is one writer's whole batch), exactly
/// the granularity recovery replays.
#[derive(Debug)]
struct Wal {
    store: DurableStore,
    /// Highest monitor batch sequence applied (0 before any) — carried
    /// through recovery and into rotated snapshot metas.
    source_seq: u64,
    /// Monitor checkpoint blob valid as of the current state.
    checkpoint: Option<String>,
}

/// Everything the batch gate guards. Writers reach `stream` through a
/// shared reference (`ingest_deltas_shared` locks per shard); the
/// publisher's write guard gives the `&mut` that `snapshot()` needs.
#[derive(Debug)]
struct Engine {
    stream: StreamingPipeline,
    wal: Option<Mutex<Wal>>,
}

/// One published snapshot: the report plus the exact cut it reflects.
#[derive(Debug)]
pub struct PublishedReport {
    report: GeolocationReport,
    epoch: u64,
    watermarks: Vec<u64>,
    posts_ingested: usize,
}

impl PublishedReport {
    /// The geolocation report, byte-identical to the single-owner path
    /// fed the same per-writer batch prefixes (see the module docs).
    pub fn report(&self) -> &GeolocationReport {
        &self.report
    }

    /// Publication epoch: 1 for the first publish, monotonically
    /// increasing.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches fully applied per registered writer (in registration
    /// order) at the moment of the cut — the exact prefix this report
    /// reflects. Writers registered after this publish are absent.
    pub fn watermarks(&self) -> &[u64] {
        &self.watermarks
    }

    /// Total posts ingested (duplicates included) at the cut.
    pub fn posts_ingested(&self) -> usize {
        self.posts_ingested
    }
}

/// The epoch/`Arc`-swap publication cell: an atomic epoch plus two
/// slots. The publisher (serialized by the write gate) stores the new
/// `Arc` into the *inactive* slot, then flips the epoch with `Release`;
/// readers load the epoch, briefly lock the epoch's slot, and clone the
/// `Arc`. A reader therefore never blocks a writer (writers don't touch
/// the cell) and blocks the *next* publish only for the nanoseconds an
/// `Arc` clone takes — two publishes apart, never the current one.
#[derive(Debug, Default)]
struct PublishedCell {
    /// 0 = nothing published yet; otherwise the newest report's epoch,
    /// stored in slot `epoch & 1`.
    epoch: AtomicU64,
    slots: [Mutex<Option<Arc<PublishedReport>>>; 2],
}

impl PublishedCell {
    /// The epoch the next publish will carry. Single-publisher (write
    /// gate held), so a plain read is exact.
    fn next_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed) + 1
    }

    /// Installs a report (single publisher, write gate held): inactive
    /// slot first, then the epoch flip that makes it visible.
    fn install(&self, report: Arc<PublishedReport>) {
        let epoch = report.epoch;
        *relock(&self.slots[(epoch & 1) as usize]) = Some(report);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The newest published report, or `None` before the first publish.
    /// Retries only when a publish flipped the epoch mid-read; slots are
    /// replaced wholesale under their mutex, so the clone is never torn
    /// and always some fully published report (possibly newer than the
    /// epoch first observed).
    fn read(&self) -> Option<Arc<PublishedReport>> {
        loop {
            let epoch = self.epoch.load(Ordering::Acquire);
            if epoch == 0 {
                return None;
            }
            let slot = relock(&self.slots[(epoch & 1) as usize]);
            if let Some(report) = slot.as_ref() {
                if report.epoch >= epoch {
                    return Some(Arc::clone(report));
                }
            }
        }
    }
}

/// State shared by the pipeline handle and every writer.
#[derive(Debug)]
struct Shared {
    gate: RwLock<Engine>,
    cell: PublishedCell,
    /// Per-writer applied-batch watermarks, in registration order. The
    /// vector only grows — a dropped writer's watermark stays, so
    /// published watermark vectors keep their indices stable.
    writers: Mutex<Vec<Arc<AtomicU64>>>,
    /// Currently live writer handles (for the `ingest.writers` gauge).
    active_writers: AtomicUsize,
    obs: Option<ConcurrentObs>,
}

impl Shared {
    /// A writer's gate acquisition: uncontended `try_read` fast path;
    /// on contention (a publish holds or awaits the write side), count
    /// it and record the wait in `ingest.lock_wait_ns`.
    fn enter_batch(&self) -> RwLockReadGuard<'_, Engine> {
        match self.gate.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                let started = self.obs.as_ref().map(|obs| {
                    obs.gate_contention.inc();
                    Instant::now()
                });
                let guard = read_gate(&self.gate);
                if let (Some(obs), Some(t0)) = (&self.obs, started) {
                    obs.shared
                        .lock_wait
                        .observe(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
                guard
            }
        }
    }
}

/// A concurrent, multi-writer front for the streaming engine. See the
/// module docs for the locking and determinism model. Cheap to share:
/// the handle itself is an `Arc` around the shared state, and
/// [`writer`](Self::writer) hands out independently owned ingest
/// handles.
#[derive(Debug, Clone)]
pub struct ConcurrentStreamingPipeline {
    shared: Arc<Shared>,
}

/// One writer's handle: every ingest holds the batch gate (read side)
/// for exactly one batch and locks one shard at a time, so writers on
/// different shards proceed in parallel. Dropping the handle
/// unregisters it from the `ingest.writers` gauge; its watermark slot
/// survives so published watermark vectors keep stable indices.
#[derive(Debug)]
pub struct IngestWriter {
    shared: Arc<Shared>,
    watermark: Arc<AtomicU64>,
}

impl ConcurrentStreamingPipeline {
    /// Wraps a configured batch pipeline, exactly as
    /// [`StreamingPipeline::new`] — plus the shared (lock-striped)
    /// placement cache the concurrent resolve path uses.
    pub fn new(pipeline: GeolocationPipeline) -> ConcurrentStreamingPipeline {
        let cache = Arc::new(SharedPlacementCache::new(
            pipeline.placement_cache_enabled(),
        ));
        let obs = pipeline.obs().map(|o| ConcurrentObs::new(&o));
        let stream = StreamingPipeline::new(pipeline).with_shared_cache(cache);
        Self::assemble(stream, None, obs)
    }

    /// Opens (creating if necessary) a **durable** concurrent engine at
    /// `dir`: recovery runs through the sequential
    /// [`StreamingPipeline::open_durable`] path (byte-identical resume),
    /// then the store is re-homed behind the WAL lock. See the module
    /// docs for the write-ahead contract under concurrency.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] when the directory is unusable or a
    /// CRC-valid snapshot fails structural decoding.
    pub fn open_durable(
        pipeline: GeolocationPipeline,
        dir: impl Into<PathBuf>,
    ) -> Result<ConcurrentStreamingPipeline, CoreError> {
        Self::open_durable_with(pipeline, Box::new(RealVfs::new()), dir)
    }

    /// [`open_durable`](Self::open_durable) with an explicit VFS (the
    /// fault-injection hook).
    ///
    /// # Errors
    ///
    /// As [`open_durable`](Self::open_durable).
    pub fn open_durable_with(
        pipeline: GeolocationPipeline,
        vfs: Box<dyn Vfs>,
        dir: impl Into<PathBuf>,
    ) -> Result<ConcurrentStreamingPipeline, CoreError> {
        let cache = Arc::new(SharedPlacementCache::new(
            pipeline.placement_cache_enabled(),
        ));
        let obs = pipeline.obs().map(|o| ConcurrentObs::new(&o));
        let durable = StreamingPipeline::open_durable_with(pipeline, vfs, dir)?;
        let (stream, store, source_seq, checkpoint) = durable.into_parts();
        let stream = stream.with_shared_cache(cache);
        Ok(Self::assemble(
            stream,
            Some(Wal {
                store,
                source_seq,
                checkpoint,
            }),
            obs,
        ))
    }

    fn assemble(
        stream: StreamingPipeline,
        wal: Option<Wal>,
        obs: Option<ConcurrentObs>,
    ) -> ConcurrentStreamingPipeline {
        ConcurrentStreamingPipeline {
            shared: Arc::new(Shared {
                gate: RwLock::new(Engine {
                    stream,
                    wal: wal.map(Mutex::new),
                }),
                cell: PublishedCell::default(),
                writers: Mutex::new(Vec::new()),
                active_writers: AtomicUsize::new(0),
                obs,
            }),
        }
    }

    /// Registers a new writer. Handles are independent: each may live on
    /// its own thread, and any number may ingest simultaneously.
    pub fn writer(&self) -> IngestWriter {
        let watermark = Arc::new(AtomicU64::new(0));
        relock(&self.shared.writers).push(Arc::clone(&watermark));
        let live = self.shared.active_writers.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(obs) = &self.shared.obs {
            obs.writers.set(live as f64);
        }
        IngestWriter {
            shared: Arc::clone(&self.shared),
            watermark,
        }
    }

    /// Publishes a fresh report through the cell and returns it.
    ///
    /// Takes the write gate — a **consistent cut**: every writer batch
    /// is fully applied or not yet started, and the per-writer
    /// watermarks captured here name exactly the applied prefixes. In
    /// durable mode, snapshot rotation happens here (and only here) when
    /// the log has outgrown its threshold, so rotation always persists a
    /// state equal to the log it compacts.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyCrowd`] when no user survives the filters.
    /// * [`CoreError::Stats`] when a fit fails.
    /// * [`CoreError::Store`] when a due rotation fails.
    pub fn publish(&self) -> Result<Arc<PublishedReport>, CoreError> {
        self.publish_with_coverage(1.0)
    }

    /// [`publish`](Self::publish) for a partial crawl — the concurrent
    /// analogue of [`StreamingPipeline::snapshot_with_coverage`].
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidCoverage`] when `coverage` is outside
    ///   `(0, 1]`, plus everything [`publish`](Self::publish) returns.
    pub fn publish_with_coverage(&self, coverage: f64) -> Result<Arc<PublishedReport>, CoreError> {
        let mut guard = write_gate(&self.shared.gate);
        // Under the write gate no watermark can move (bumps happen under
        // a read hold), so this vector is the exact cut.
        let watermarks: Vec<u64> = relock(&self.shared.writers)
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .collect();
        let Engine { stream, wal } = &mut *guard;
        let report = stream.snapshot_with_coverage(coverage)?;
        if let Some(wal) = wal {
            let wal = wal.get_mut().unwrap_or_else(PoisonError::into_inner);
            if wal.store.should_snapshot() {
                let parts =
                    build_snapshot_parts(stream, wal.source_seq, wal.checkpoint.as_deref())?;
                let last_seq = wal.store.last_seq();
                wal.store.write_snapshot(last_seq, &parts)?;
            }
        }
        let posts_ingested = stream.posts_ingested();
        let published = Arc::new(PublishedReport {
            report,
            epoch: self.shared.cell.next_epoch(),
            watermarks,
            posts_ingested,
        });
        self.shared.cell.install(Arc::clone(&published));
        if let Some(obs) = &self.shared.obs {
            obs.publishes.inc();
        }
        Ok(published)
    }

    /// The newest published report — **wait-free with respect to
    /// writers**: this never acquires the batch gate or a shard lock, so
    /// a reader loop cannot slow ingestion down (and ingestion cannot
    /// starve readers). `None` before the first
    /// [`publish`](Self::publish).
    pub fn snapshot(&self) -> Option<Arc<PublishedReport>> {
        self.shared.cell.read()
    }

    /// Writes a durable snapshot generation now (compacting the log),
    /// regardless of the rotation threshold; `Ok(None)` on a
    /// non-durable engine. Takes the write gate, so the persisted
    /// generation equals the in-memory state exactly.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] when writing the generation fails.
    pub fn checkpoint_now(&self) -> Result<Option<u64>, CoreError> {
        let mut guard = write_gate(&self.shared.gate);
        let Engine { stream, wal } = &mut *guard;
        let Some(wal) = wal else {
            return Ok(None);
        };
        let wal = wal.get_mut().unwrap_or_else(PoisonError::into_inner);
        let parts = build_snapshot_parts(stream, wal.source_seq, wal.checkpoint.as_deref())?;
        let last_seq = wal.store.last_seq();
        Ok(Some(wal.store.write_snapshot(last_seq, &parts)?))
    }

    /// Number of users ever ingested (brief gate-read).
    pub fn users_tracked(&self) -> usize {
        read_gate(&self.shared.gate).stream.users_tracked()
    }

    /// Total posts ingested across all users, duplicates included.
    pub fn posts_ingested(&self) -> usize {
        read_gate(&self.shared.gate).stream.posts_ingested()
    }

    /// Users whose profiles changed since the last refresh.
    pub fn dirty_users(&self) -> usize {
        read_gate(&self.shared.gate).stream.dirty_users()
    }

    /// Number of hash shards the accumulator store is partitioned into.
    pub fn shard_count(&self) -> usize {
        read_gate(&self.shared.gate).stream.shard_count()
    }

    /// Lifetime placement-cache `(hits, misses)` across every resolver
    /// attached to the shared cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        read_gate(&self.shared.gate).stream.cache_stats()
    }

    /// Currently registered (not yet dropped) writer handles.
    pub fn active_writers(&self) -> usize {
        self.shared.active_writers.load(Ordering::Relaxed)
    }
}

impl IngestWriter {
    /// Ingests new posts for one user — one batch, one gate hold.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] in durable mode when the write-ahead append
    /// fails; the in-memory engine is unchanged in that case.
    pub fn ingest(&self, user: &str, posts: &[Timestamp]) -> Result<(), CoreError> {
        if posts.is_empty() {
            return Ok(());
        }
        self.ingest_deltas(&[(user, posts)])
    }

    /// Ingests a batch of single-post observations (the monitor poll
    /// shape) as one batch — one gate hold, one WAL record in durable
    /// mode, one watermark step.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn ingest_posts(&self, posts: &[(String, Timestamp)]) -> Result<(), CoreError> {
        let deltas: Vec<(&str, &[Timestamp])> = posts
            .iter()
            .map(|(user, ts)| (user.as_str(), std::slice::from_ref(ts)))
            .collect();
        self.ingest_deltas(&deltas)
    }

    /// [`ingest_posts`](Self::ingest_posts) over borrowed user ids — no
    /// owned `String` per observation.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn ingest_posts_ref(&self, posts: &[(&str, Timestamp)]) -> Result<(), CoreError> {
        let deltas: Vec<(&str, &[Timestamp])> = posts
            .iter()
            .map(|(user, ts)| (*user, std::slice::from_ref(ts)))
            .collect();
        self.ingest_deltas(&deltas)
    }

    /// Retracts posts for one user — one signed batch, one gate hold,
    /// under exactly the ingest discipline (WAL append first in durable
    /// mode, one shard locked at a time, watermark bumped inside the
    /// hold). Retraction batches count toward the writer's watermark
    /// like any other batch.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn retract(&self, user: &str, posts: &[Timestamp]) -> Result<(), CoreError> {
        if posts.is_empty() {
            return Ok(());
        }
        self.retract_deltas(&[(user, posts)])
    }

    /// Retracts a batch of single-post observations as one signed batch.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn retract_posts(&self, posts: &[(String, Timestamp)]) -> Result<(), CoreError> {
        let deltas: Vec<(&str, &[Timestamp])> = posts
            .iter()
            .map(|(user, ts)| (user.as_str(), std::slice::from_ref(ts)))
            .collect();
        self.retract_deltas(&deltas)
    }

    /// [`retract_posts`](Self::retract_posts) over borrowed user ids.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn retract_posts_ref(&self, posts: &[(&str, Timestamp)]) -> Result<(), CoreError> {
        let deltas: Vec<(&str, &[Timestamp])> = posts
            .iter()
            .map(|(user, ts)| (*user, std::slice::from_ref(ts)))
            .collect();
        self.retract_deltas(&deltas)
    }

    /// Ingests a batch of per-user deltas. Empty batches are ignored
    /// (no gate hold, no watermark step).
    ///
    /// Lock order: gate (read) → WAL append + fsync (durable mode) →
    /// shards, one at a time → watermark bump → gate release. The
    /// watermark moves only after the batch is fully applied and only
    /// inside the gate hold, which is what makes publish-time watermark
    /// capture an exact cut.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn ingest_deltas(&self, deltas: &[(&str, &[Timestamp])]) -> Result<(), CoreError> {
        self.apply_deltas(deltas, false)
    }

    /// Retracts a batch of per-user deltas — the signed twin of
    /// [`ingest_deltas`](Self::ingest_deltas): same gate/WAL/shard lock
    /// order, but the record is a retraction and the shards release the
    /// posts instead of absorbing them.
    ///
    /// # Errors
    ///
    /// As [`ingest`](Self::ingest).
    pub fn retract_deltas(&self, deltas: &[(&str, &[Timestamp])]) -> Result<(), CoreError> {
        self.apply_deltas(deltas, true)
    }

    fn apply_deltas(
        &self,
        deltas: &[(&str, &[Timestamp])],
        retract: bool,
    ) -> Result<(), CoreError> {
        if deltas.iter().all(|(_, posts)| posts.is_empty()) {
            return Ok(());
        }
        let guard = self.shared.enter_batch();
        if let Some(wal) = &guard.wal {
            let payload = if retract {
                encode_retract_batch(deltas)?
            } else {
                encode_plain_batch(deltas)?
            };
            let mut wal = relock(wal);
            wal.store.append_delta(&payload)?;
        }
        let obs = self.shared.obs.as_ref().map(|o| &o.shared);
        if retract {
            guard.stream.retract_deltas_shared(deltas, obs);
        } else {
            guard.stream.ingest_deltas_shared(deltas, obs);
        }
        if let Some(obs) = &self.shared.obs {
            obs.batches.inc();
        }
        self.watermark.fetch_add(1, Ordering::Release);
        drop(guard);
        Ok(())
    }

    /// Batches this writer has fully applied — its own watermark.
    pub fn batches_applied(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }
}

impl Drop for IngestWriter {
    fn drop(&mut self) {
        let live = self
            .shared
            .active_writers
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        if let Some(obs) = &self.shared.obs {
            obs.writers.set(live as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> GeolocationPipeline {
        GeolocationPipeline::default().min_posts(1).threads(1)
    }

    fn posts_for(day0: i64, hour: u8, n: usize) -> Vec<Timestamp> {
        (0..n as i64)
            .map(|d| Timestamp::from_secs((day0 + d) * 86_400 + i64::from(hour) * 3_600))
            .collect()
    }

    #[test]
    fn snapshot_is_none_before_first_publish_and_latest_after() {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        assert!(engine.snapshot().is_none());
        let writer = engine.writer();
        writer.ingest("a", &posts_for(0, 20, 12)).unwrap();
        let p1 = engine.publish().unwrap();
        assert_eq!(p1.epoch(), 1);
        assert_eq!(engine.snapshot().unwrap().epoch(), 1);
        writer.ingest("b", &posts_for(0, 9, 12)).unwrap();
        let p2 = engine.publish().unwrap();
        assert_eq!(p2.epoch(), 2);
        assert_eq!(engine.snapshot().unwrap().epoch(), 2);
        // Old Arcs stay valid after being superseded.
        assert_eq!(p1.report().profiles().len(), 1);
        assert_eq!(p2.report().profiles().len(), 2);
    }

    #[test]
    fn concurrent_writers_match_the_single_owner_path() {
        let traces: Vec<(String, Vec<Timestamp>)> = (0..24)
            .map(|i| {
                (
                    format!("u{i:02}"),
                    posts_for(i % 5, (i * 3 % 24) as u8, 8 + i as usize % 7),
                )
            })
            .collect();
        let mut reference = StreamingPipeline::new(pipeline());
        for (user, posts) in &traces {
            reference.ingest(user, posts);
        }
        let expected = serde_json::to_string(&reference.snapshot().unwrap()).unwrap();

        let engine = ConcurrentStreamingPipeline::new(pipeline());
        std::thread::scope(|scope| {
            for chunk in traces.chunks(6) {
                let writer = engine.writer();
                scope.spawn(move || {
                    for (user, posts) in chunk {
                        writer.ingest(user, posts).unwrap();
                    }
                });
            }
        });
        let published = engine.publish().unwrap();
        assert_eq!(serde_json::to_string(published.report()).unwrap(), expected);
        assert_eq!(published.watermarks().iter().sum::<u64>(), 24);
    }

    #[test]
    fn watermarks_name_the_published_cut() {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        let w0 = engine.writer();
        let w1 = engine.writer();
        w0.ingest("a", &posts_for(0, 20, 10)).unwrap();
        w0.ingest("b", &posts_for(0, 21, 10)).unwrap();
        w1.ingest("c", &posts_for(0, 3, 10)).unwrap();
        let published = engine.publish().unwrap();
        assert_eq!(published.watermarks(), &[2, 1]);
        assert_eq!(w0.batches_applied(), 2);
        assert_eq!(w1.batches_applied(), 1);
        // A writer registered after the publish is absent from it.
        let _w2 = engine.writer();
        assert_eq!(published.watermarks().len(), 2);
        assert_eq!(engine.active_writers(), 3);
    }

    #[test]
    fn dropped_writers_keep_their_watermark_index() {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        let w0 = engine.writer();
        w0.ingest("a", &posts_for(0, 20, 10)).unwrap();
        drop(w0);
        assert_eq!(engine.active_writers(), 0);
        let w1 = engine.writer();
        w1.ingest("b", &posts_for(0, 9, 10)).unwrap();
        let published = engine.publish().unwrap();
        // Index 0 is the dropped writer, index 1 the live one.
        assert_eq!(published.watermarks(), &[1, 1]);
    }

    #[test]
    fn empty_batches_hold_nothing_and_move_nothing() {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        let writer = engine.writer();
        writer.ingest("ghost", &[]).unwrap();
        writer.ingest_posts(&[]).unwrap();
        writer.ingest_deltas(&[("ghost", &[])]).unwrap();
        assert_eq!(writer.batches_applied(), 0);
        assert_eq!(engine.users_tracked(), 0);
        assert!(matches!(engine.publish(), Err(CoreError::EmptyCrowd)));
    }

    #[test]
    fn readers_see_published_reports_while_writers_ingest() {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        engine
            .writer()
            .ingest("seed", &posts_for(0, 20, 10))
            .unwrap();
        let first = engine.publish().unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let engine_ref = &engine;
            let stop_ref = &stop;
            scope.spawn(move || {
                for i in 0..40 {
                    let writer = engine_ref.writer();
                    writer
                        .ingest(&format!("w{i}"), &posts_for(i, (i % 24) as u8, 6))
                        .unwrap();
                    if i % 8 == 7 {
                        engine_ref.publish().unwrap();
                    }
                }
                stop_ref.store(true, Ordering::Release);
            });
            // Reader loop: every observed report is a fully published
            // epoch ≥ the first one, never torn, never blocking.
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Acquire) {
                let report = engine.snapshot().expect("published before loop");
                assert!(report.epoch() >= first.epoch());
                assert!(report.epoch() >= last_epoch, "epochs are monotonic");
                last_epoch = report.epoch();
                // The seed batch carried 10 posts, every later batch 6:
                // watermarks and post totals must describe the same cut.
                let batches = report.watermarks().iter().sum::<u64>() as usize;
                assert_eq!(report.posts_ingested(), 10 + 6 * (batches - 1));
            }
        });
    }

    #[test]
    fn concurrent_retraction_matches_the_single_owner_path() {
        // Ingest everything, then retract the back half from several
        // writers at once: the published report must equal a single-owner
        // engine fed only the surviving posts.
        let traces: Vec<(String, Vec<Timestamp>)> = (0..18)
            .map(|i| (format!("u{i:02}"), posts_for(i % 4, (i * 5 % 24) as u8, 10)))
            .collect();
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        let seed = engine.writer();
        for (user, posts) in &traces {
            seed.ingest(user, posts).unwrap();
        }
        std::thread::scope(|scope| {
            for chunk in traces.chunks(6) {
                let writer = engine.writer();
                scope.spawn(move || {
                    for (user, posts) in chunk {
                        writer.retract(user, &posts[5..]).unwrap();
                    }
                });
            }
        });
        let mut reference = StreamingPipeline::new(pipeline());
        for (user, posts) in &traces {
            reference.ingest(user, &posts[..5]);
        }
        let expected = serde_json::to_string(&reference.snapshot().unwrap()).unwrap();
        let published = engine.publish().unwrap();
        assert_eq!(serde_json::to_string(published.report()).unwrap(), expected);
        // 18 ingest batches + 18 retraction batches, all watermarked.
        assert_eq!(published.watermarks().iter().sum::<u64>(), 36);
    }

    #[test]
    fn publish_with_invalid_coverage_is_rejected() {
        let engine = ConcurrentStreamingPipeline::new(pipeline());
        engine.writer().ingest("a", &posts_for(0, 20, 10)).unwrap();
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            assert!(matches!(
                engine.publish_with_coverage(bad),
                Err(CoreError::InvalidCoverage { .. })
            ));
        }
        assert!(
            engine.snapshot().is_none(),
            "failed publishes publish nothing"
        );
    }
}
