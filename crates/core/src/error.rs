//! Error type for the geolocation pipeline.

use std::fmt;

use crowdtz_stats::StatsError;

/// The error type returned by fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A numeric kernel failed (degenerate fit, empty distribution…).
    Stats(StatsError),
    /// No user passed the activity/polishing filters, so there is no crowd
    /// to geolocate.
    EmptyCrowd,
    /// A user trace had too few active slots to build a profile.
    InsufficientActivity {
        /// The user in question.
        user: String,
        /// Active (day, hour) slots found.
        slots: usize,
        /// Slots required.
        needed: usize,
    },
    /// A partial-dump analysis was given a coverage fraction outside
    /// `(0, 1]` (a crawl that covered nothing cannot be analyzed, and one
    /// cannot cover more than the whole forum).
    InvalidCoverage {
        /// The offending fraction.
        coverage: f64,
    },
    /// The durable store failed — an I/O error, unroutable corruption,
    /// or an injected crash point (see `crowdtz-store`).
    Store(crowdtz_store::StoreError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stats(e) => write!(f, "statistics failure: {e}"),
            CoreError::EmptyCrowd => {
                write!(f, "no users survived filtering; nothing to geolocate")
            }
            CoreError::InsufficientActivity {
                user,
                slots,
                needed,
            } => write!(f, "user {user:?} has {slots} active slots, need {needed}"),
            CoreError::InvalidCoverage { coverage } => {
                write!(f, "coverage fraction {coverage} outside (0, 1]")
            }
            CoreError::Store(e) => write!(f, "durable store failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> CoreError {
        CoreError::Stats(e)
    }
}

impl From<crowdtz_store::StoreError> for CoreError {
    fn from(e: crowdtz_store::StoreError) -> CoreError {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::Stats(StatsError::ZeroVariance);
        assert!(e.to_string().contains("statistics"));
        assert!(e.source().is_some());
        assert!(CoreError::EmptyCrowd.source().is_none());
        let e = CoreError::InsufficientActivity {
            user: "u1".into(),
            slots: 3,
            needed: 30,
        };
        assert!(e.to_string().contains("u1"));
        let e = CoreError::InvalidCoverage { coverage: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }
}
