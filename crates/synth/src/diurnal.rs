//! The diurnal activity model: *when during the local day people post*.
//!
//! The paper's entire method rests on the stability of this curve: §III
//! observes (citing the Facebook and YouTube measurement studies [5], [6])
//! that requests *"steadily grow from the early morning to the afternoon
//! with a peak between 17:00 and 22:00, then the number of requests drops
//! rapidly during the night"*, and §IV adds the night trough between 1 h
//! and 7 h and a lunch-time dip visible in single-user profiles (Fig. 1).
//! Crucially, the curve is near-identical across the 14 ground-truth
//! regions once shifted to a common time zone (pairwise Pearson ≈ 0.9).

use serde::{Deserialize, Serialize};

use crowdtz_stats::Distribution24;
use crowdtz_time::HOURS_PER_DAY;

/// A 24-hour template of relative posting intensity in **local time**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalModel {
    weights: [f64; HOURS_PER_DAY],
}

impl DiurnalModel {
    /// The standard human rhythm used throughout the reproduction.
    ///
    /// Landmarks (local time), matching the paper's description:
    /// * deep trough between 01 h and 07 h, minimum around 04–05 h;
    /// * steady morning rise from 07 h;
    /// * slight lunch dip around 13 h;
    /// * growth through the afternoon into an evening peak at 21–22 h;
    /// * rapid drop after 22 h.
    ///
    /// ```
    /// use crowdtz_synth::DiurnalModel;
    /// let d = DiurnalModel::standard().distribution();
    /// assert!((20..=22).contains(&d.peak_hour()));
    /// assert!((3..=5).contains(&d.trough_hour()));
    /// ```
    pub fn standard() -> DiurnalModel {
        DiurnalModel {
            weights: [
                0.50, // 00
                0.24, // 01
                0.12, // 02
                0.07, // 03
                0.05, // 04  trough
                0.06, // 05
                0.10, // 06
                0.22, // 07
                0.42, // 08
                0.58, // 09
                0.66, // 10
                0.70, // 11
                0.68, // 12
                0.60, // 13  lunch dip
                0.64, // 14
                0.70, // 15
                0.76, // 16
                0.84, // 17
                0.90, // 18
                0.94, // 19
                0.98, // 20
                1.00, // 21  evening peak
                0.96, // 22
                0.74, // 23
            ],
        }
    }

    /// A flat model (every hour equally likely) — what bots look like.
    pub fn flat() -> DiurnalModel {
        DiurnalModel {
            weights: [1.0; HOURS_PER_DAY],
        }
    }

    /// Builds a model from raw non-negative weights.
    ///
    /// Weights are used relatively; they need not sum to anything
    /// particular. Negative entries are clamped to zero.
    pub fn from_weights(weights: [f64; HOURS_PER_DAY]) -> DiurnalModel {
        let mut w = weights;
        for v in &mut w {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
            }
        }
        DiurnalModel { weights: w }
    }

    /// The weekend variant of this model: mornings start later and
    /// late-night activity is higher, as observed in the access-pattern
    /// studies the paper builds on.
    #[must_use]
    pub fn weekend(&self) -> DiurnalModel {
        let mut w = [0.0; HOURS_PER_DAY];
        for (h, dst) in w.iter_mut().enumerate() {
            // Push the morning one hour later and lift the night tail.
            let shifted = self.weights[(h + HOURS_PER_DAY - 1) % HOURS_PER_DAY];
            let base = self.weights[h];
            let mixed = if (6..12).contains(&h) {
                0.4 * base + 0.6 * shifted
            } else {
                base
            };
            *dst = if h <= 2 || h == 23 {
                mixed * 1.35
            } else {
                mixed
            };
        }
        DiurnalModel { weights: w }
    }

    /// The raw hourly weights.
    pub fn weights(&self) -> &[f64; HOURS_PER_DAY] {
        &self.weights
    }

    /// The model normalized to a probability distribution over hours.
    pub fn distribution(&self) -> Distribution24 {
        Distribution24::from_weights(&self.weights)
            .expect("diurnal weights validated at construction")
    }

    /// Relative intensity at a fractional local hour (circular linear
    /// interpolation); used when thinning continuous-time events.
    pub fn intensity(&self, local_hour: f64) -> f64 {
        let h = local_hour.rem_euclid(24.0);
        let lo = h.floor() as usize % HOURS_PER_DAY;
        let hi = (lo + 1) % HOURS_PER_DAY;
        let frac = h - h.floor();
        self.weights[lo] * (1.0 - frac) + self.weights[hi] * frac
    }

    /// Circularly rotates the template by a fractional number of hours
    /// (positive = later), resampling through linear interpolation.
    ///
    /// Human chronotypes vary continuously, not in whole-hour steps; the
    /// population generator uses this to avoid artificial clustering of
    /// users at discrete phase offsets.
    #[must_use]
    pub fn rotated_fractional(&self, hours: f64) -> DiurnalModel {
        let mut w = [0.0; HOURS_PER_DAY];
        for (h, dst) in w.iter_mut().enumerate() {
            *dst = self.intensity(h as f64 - hours);
        }
        DiurnalModel { weights: w }
    }

    /// Circularly rotates the template by `hours` (positive = later).
    #[must_use]
    pub fn rotated(&self, hours: i32) -> DiurnalModel {
        let mut w = [0.0; HOURS_PER_DAY];
        for (h, &v) in self.weights.iter().enumerate() {
            let dst = (h as i32 + hours).rem_euclid(HOURS_PER_DAY as i32) as usize;
            w[dst] = v;
        }
        DiurnalModel { weights: w }
    }

    /// Blends this model towards another: `(1−t)·self + t·other`.
    #[must_use]
    pub fn blended(&self, other: &DiurnalModel, t: f64) -> DiurnalModel {
        let t = t.clamp(0.0, 1.0);
        let mut w = [0.0; HOURS_PER_DAY];
        for (h, dst) in w.iter_mut().enumerate() {
            *dst = (1.0 - t) * self.weights[h] + t * other.weights[h];
        }
        DiurnalModel { weights: w }
    }
}

impl Default for DiurnalModel {
    /// [`DiurnalModel::standard`].
    fn default() -> DiurnalModel {
        DiurnalModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_landmarks() {
        let d = DiurnalModel::standard().distribution();
        // Peak in the paper's 17–22 evening band.
        assert!((17..=22).contains(&d.peak_hour()), "peak {}", d.peak_hour());
        // Trough inside the 1–7 night band.
        assert!(
            (1..=7).contains(&d.trough_hour()),
            "trough {}",
            d.trough_hour()
        );
        // Night hours (1–6) each hold < 2% of daily activity.
        for h in 1..=6 {
            assert!(d.get(h) < 0.02, "hour {h}: {}", d.get(h));
        }
        // Lunch dip: 13h below both 12h and 15h.
        let w = DiurnalModel::standard();
        assert!(w.weights()[13] < w.weights()[12]);
        assert!(w.weights()[13] < w.weights()[15]);
    }

    #[test]
    fn evening_dominates_morning() {
        let w = DiurnalModel::standard();
        let evening: f64 = (17..=22).map(|h| w.weights()[h]).sum();
        let morning: f64 = (7..=12).map(|h| w.weights()[h]).sum();
        assert!(evening > morning);
    }

    #[test]
    fn flat_is_uniform() {
        let d = DiurnalModel::flat().distribution();
        for h in 0..24 {
            assert!((d.get(h) - 1.0 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_weights_sanitizes() {
        let mut w = [1.0; 24];
        w[0] = -5.0;
        w[1] = f64::NAN;
        let m = DiurnalModel::from_weights(w);
        assert_eq!(m.weights()[0], 0.0);
        assert_eq!(m.weights()[1], 0.0);
    }

    #[test]
    fn intensity_interpolates() {
        let m = DiurnalModel::standard();
        let at_9 = m.intensity(9.0);
        let at_10 = m.intensity(10.0);
        let mid = m.intensity(9.5);
        assert!((mid - (at_9 + at_10) / 2.0).abs() < 1e-12);
        // Wraps around midnight.
        assert!((m.intensity(23.5) - (m.weights()[23] + m.weights()[0]) / 2.0).abs() < 1e-12);
        assert_eq!(m.intensity(-1.0), m.intensity(23.0));
        assert_eq!(m.intensity(25.0), m.intensity(1.0));
    }

    #[test]
    fn rotation_moves_peak() {
        let m = DiurnalModel::standard();
        let peak = m.distribution().peak_hour();
        let rotated = m.rotated(3);
        assert_eq!(rotated.distribution().peak_hour(), (peak + 3) % 24);
        // Full turn is identity.
        assert_eq!(m.rotated(24), m);
    }

    #[test]
    fn weekend_lifts_night() {
        let wd = DiurnalModel::standard();
        let we = wd.weekend();
        let wd_d = wd.distribution();
        let we_d = we.distribution();
        let wd_night: f64 = [0usize, 1, 2].iter().map(|&h| wd_d.get(h)).sum();
        let we_night: f64 = [0usize, 1, 2].iter().map(|&h| we_d.get(h)).sum();
        assert!(we_night > wd_night);
        // The peak stays in the evening.
        assert!((17..=23).contains(&we_d.peak_hour()));
    }

    #[test]
    fn blend_endpoints() {
        let a = DiurnalModel::standard();
        let b = DiurnalModel::flat();
        assert_eq!(a.blended(&b, 0.0), a);
        assert_eq!(a.blended(&b, 1.0), b);
        let mid = a.blended(&b, 0.5);
        assert!((mid.weights()[4] - (a.weights()[4] + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(DiurnalModel::default(), DiurnalModel::standard());
    }
}
