//! Flat-profile users: bots and shift workers.
//!
//! §IV.C of the paper: users whose activity is *"very close to being
//! uniformly distributed over all the hours"* are typically bots — or,
//! rarely, shift workers — and carry no time-zone information, so the
//! polishing step removes them. These generators produce exactly those two
//! kinds of user so the filter can be exercised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crowdtz_time::{Date, Timestamp, UserTrace, SECS_PER_DAY};

use crate::sampling::poisson;

/// Specification of an automated poster (a bot).
///
/// Bots run on server cron schedules, not on human circadian rhythm:
/// posts are spread uniformly over the whole day in UTC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BotSpec {
    /// Mean posts per day.
    pub posts_per_day: f64,
    /// First day of activity (UTC).
    pub start: Date,
    /// Last day of activity (UTC), inclusive.
    pub end: Date,
}

impl Default for BotSpec {
    /// A bot posting 2 times/day through 2016.
    fn default() -> BotSpec {
        BotSpec {
            posts_per_day: 2.0,
            start: Date::new(2016, 1, 1).expect("static date"),
            end: Date::new(2016, 12, 31).expect("static date"),
        }
    }
}

/// Generates a bot's trace: Poisson posts uniformly over each UTC day.
///
/// ```
/// use crowdtz_synth::{generate_bot, BotSpec};
/// let trace = generate_bot("bot-1", &BotSpec::default(), 7);
/// assert!(trace.len() > 300);
/// ```
pub fn generate_bot(id: &str, spec: &BotSpec, seed: u64) -> UserTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB07_B07);
    let mut posts = Vec::new();
    for date in spec.start.iter_to(spec.end) {
        let n = poisson(&mut rng, spec.posts_per_day);
        let day_start = date.days_since_epoch() * SECS_PER_DAY;
        for _ in 0..n {
            posts.push(Timestamp::from_secs(
                day_start + rng.gen_range(0..SECS_PER_DAY),
            ));
        }
    }
    UserTrace::new(id, posts)
}

/// Specification of a rotating-shift worker.
///
/// The worker posts only during the off-shift leisure window; the shift
/// rotates every `rotation_days` through three 8-hour patterns, so the
/// long-run profile flattens out even though each week is strongly peaked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftWorkerSpec {
    /// Mean posts per day.
    pub posts_per_day: f64,
    /// Days between shift rotations.
    pub rotation_days: u32,
    /// First day of activity (local = UTC offset handled by caller).
    pub start: Date,
    /// Last day of activity, inclusive.
    pub end: Date,
}

impl Default for ShiftWorkerSpec {
    /// Weekly-rotating worker posting 1.5 times/day through 2016.
    fn default() -> ShiftWorkerSpec {
        ShiftWorkerSpec {
            posts_per_day: 1.5,
            rotation_days: 7,
            start: Date::new(2016, 1, 1).expect("static date"),
            end: Date::new(2016, 12, 31).expect("static date"),
        }
    }
}

/// Generates a rotating-shift worker's trace.
///
/// Each rotation period the 8-hour posting window moves: 14–22, 22–06,
/// 06–14. Aggregated over months the hour histogram approaches uniform.
pub fn generate_shift_worker(id: &str, spec: &ShiftWorkerSpec, seed: u64) -> UserTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5817F7);
    let windows: [i64; 3] = [14, 22, 6]; // window start hours
    let mut posts = Vec::new();
    for date in spec.start.iter_to(spec.end) {
        let day_index = date.days_since_epoch() - spec.start.days_since_epoch();
        let rotation = (day_index / i64::from(spec.rotation_days.max(1))) as usize % 3;
        let window_start_hour = windows[rotation];
        let n = poisson(&mut rng, spec.posts_per_day);
        let day_start = date.days_since_epoch() * SECS_PER_DAY;
        for _ in 0..n {
            let sec_in_window = rng.gen_range(0..8 * 3_600);
            let sec = (window_start_hour * 3_600 + sec_in_window).rem_euclid(SECS_PER_DAY);
            // Window may wrap past midnight; keep it on the same civil day
            // for simplicity (the wrap only blurs the profile further).
            posts.push(Timestamp::from_secs(day_start + sec));
        }
    }
    UserTrace::new(id, posts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtz_stats::{circular_emd, Distribution24, Histogram24};
    use crowdtz_time::TzOffset;

    fn profile(trace: &UserTrace) -> Distribution24 {
        let h: Histogram24 = trace
            .posts()
            .iter()
            .map(|&t| t.hour_in_offset(TzOffset::UTC))
            .collect();
        h.normalized().unwrap()
    }

    #[test]
    fn bot_profile_is_nearly_flat() {
        let trace = generate_bot("b", &BotSpec::default(), 1);
        let d = profile(&trace);
        let dist = circular_emd(&d, &Distribution24::uniform());
        assert!(dist < 0.5, "bot EMD to uniform = {dist}");
    }

    #[test]
    fn bot_is_deterministic() {
        let a = generate_bot("b", &BotSpec::default(), 5);
        let b = generate_bot("b", &BotSpec::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn bot_respects_period() {
        let spec = BotSpec {
            posts_per_day: 5.0,
            start: Date::new(2016, 3, 1).unwrap(),
            end: Date::new(2016, 3, 31).unwrap(),
        };
        let trace = generate_bot("b", &spec, 2);
        let lo = Date::new(2016, 3, 1).unwrap().days_since_epoch() * SECS_PER_DAY;
        let hi = Date::new(2016, 4, 1).unwrap().days_since_epoch() * SECS_PER_DAY;
        for &p in trace.posts() {
            assert!(p.as_secs() >= lo && p.as_secs() < hi);
        }
    }

    #[test]
    fn shift_worker_long_run_flattens() {
        let trace = generate_shift_worker("w", &ShiftWorkerSpec::default(), 3);
        let d = profile(&trace);
        // Flatter than a normal human profile: closer to uniform than a
        // standard rhythm is.
        let human = crate::diurnal::DiurnalModel::standard().distribution();
        let worker_flatness = circular_emd(&d, &Distribution24::uniform());
        let human_flatness = circular_emd(&human, &Distribution24::uniform());
        assert!(
            worker_flatness < human_flatness * 0.6,
            "worker {worker_flatness} vs human {human_flatness}"
        );
    }

    #[test]
    fn shift_worker_single_rotation_is_peaked() {
        // Within one rotation the worker posts in one 8-hour window only.
        let spec = ShiftWorkerSpec {
            posts_per_day: 4.0,
            rotation_days: 400, // never rotates within the period
            start: Date::new(2016, 1, 1).unwrap(),
            end: Date::new(2016, 3, 31).unwrap(),
        };
        let trace = generate_shift_worker("w", &spec, 4);
        let d = profile(&trace);
        // All mass within hours 14..22.
        let in_window: f64 = (14..22).map(|h| d.get(h)).sum();
        assert!((in_window - 1.0).abs() < 1e-9, "in window {in_window}");
    }

    #[test]
    fn volumes_scale() {
        let low = generate_bot(
            "b",
            &BotSpec {
                posts_per_day: 0.5,
                ..BotSpec::default()
            },
            9,
        );
        let high = generate_bot(
            "b",
            &BotSpec {
                posts_per_day: 5.0,
                ..BotSpec::default()
            },
            9,
        );
        assert!(high.len() > low.len() * 5);
    }
}
