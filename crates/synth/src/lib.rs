//! Synthetic activity traces with realistic diurnal rhythms.
//!
//! The paper's ground truth is a 2016 Twitter stream sample with users of
//! verified origin in 14 countries/states (Table I), plus five Dark Web
//! forum dumps. None of those datasets can be (ethically or practically)
//! re-acquired, so this crate builds their statistical twin: populations of
//! synthetic users whose posting behaviour follows the diurnal pattern the
//! paper documents — a deep night trough between 1 h and 7 h, a morning
//! rise, a lunch dip, and an evening peak between 17 h and 22 h local time
//! (§III, §IV and the Facebook/YouTube studies it cites).
//!
//! Activity is generated in **local civil time** (including daylight-saving
//! shifts and holiday lulls) and converted to UTC through the region's
//! [`crowdtz_time::Zone`]; that conversion is what makes the §V.F
//! hemisphere signal appear in the traces, exactly as it does in reality.
//!
//! Everything is deterministic given a seed, so every experiment in the
//! repository is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use crowdtz_synth::PopulationSpec;
//! use crowdtz_time::RegionDb;
//!
//! let db = RegionDb::table1();
//! let germany = db.get(&"germany".into()).unwrap();
//! let traces = PopulationSpec::new(germany.clone())
//!     .users(20)
//!     .seed(7)
//!     .generate();
//! assert_eq!(traces.len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bots;
mod chronotype;
mod diurnal;
mod migration;
mod population;
mod sampling;
mod twitter;

pub use bots::{generate_bot, generate_shift_worker, BotSpec, ShiftWorkerSpec};
pub use chronotype::Chronotype;
pub use diurnal::DiurnalModel;
pub use migration::MigrationSpec;
pub use population::PopulationSpec;
pub use sampling::{normal, poisson, sample_discrete};
pub use twitter::{TwitterDataset, TwitterDatasetBuilder};
