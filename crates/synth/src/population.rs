//! Region population generator: many users, one region, one year of posts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crowdtz_time::{Date, Region, TraceSet, UserTrace};

use crate::chronotype::Chronotype;
use crate::diurnal::DiurnalModel;
use crate::sampling::{normal, poisson, sample_discrete};

/// Builder for a synthetic population of one region.
///
/// Users are generated deterministically from the seed: each gets a
/// chronotype, a personal posting rate, and per-hour idiosyncratic noise.
/// Posts are laid out day by day in **local civil time** — with weekend and
/// holiday modulation — and converted to UTC through the region's zone, so
/// daylight-saving transitions leave the same fingerprint in the trace that
/// they leave in real data (§V.F).
///
/// ```
/// use crowdtz_synth::PopulationSpec;
/// use crowdtz_time::RegionDb;
///
/// let db = RegionDb::table1();
/// let italy = db.get(&"italy".into()).unwrap();
/// let traces = PopulationSpec::new(italy.clone()).users(5).seed(1).generate();
/// assert_eq!(traces.len(), 5);
/// assert!(traces.total_posts() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    region: Region,
    users: usize,
    seed: u64,
    start: Date,
    end: Date,
    posts_per_day: f64,
    prefix: String,
    base_model: DiurnalModel,
    holiday_damping: f64,
}

impl PopulationSpec {
    /// Creates a spec for the given region with the defaults used by the
    /// paper reproduction: the full year 2016, a mean of 0.4 posts per user
    /// per day, user ids prefixed with the region slug.
    pub fn new(region: Region) -> PopulationSpec {
        let prefix = format!("{}-u", region.id());
        PopulationSpec {
            region,
            users: 100,
            seed: 0,
            start: Date::new(2016, 1, 1).expect("static date"),
            end: Date::new(2016, 12, 31).expect("static date"),
            posts_per_day: 0.4,
            prefix,
            base_model: DiurnalModel::standard(),
            holiday_damping: 0.25,
        }
    }

    /// Sets the number of users.
    #[must_use]
    pub fn users(mut self, users: usize) -> PopulationSpec {
        self.users = users;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> PopulationSpec {
        self.seed = seed;
        self
    }

    /// Sets the observation period (inclusive dates, local time).
    #[must_use]
    pub fn period(mut self, start: Date, end: Date) -> PopulationSpec {
        self.start = start;
        self.end = end;
        self
    }

    /// Sets the mean posts per user per day.
    #[must_use]
    pub fn posts_per_day(mut self, rate: f64) -> PopulationSpec {
        self.posts_per_day = rate.max(0.0);
        self
    }

    /// Sets the user-id prefix.
    #[must_use]
    pub fn prefix(mut self, prefix: impl Into<String>) -> PopulationSpec {
        self.prefix = prefix.into();
        self
    }

    /// Replaces the base diurnal model (e.g. with a custom culture's curve).
    #[must_use]
    pub fn base_model(mut self, model: DiurnalModel) -> PopulationSpec {
        self.base_model = model;
        self
    }

    /// Multiplier applied to the posting rate on holidays (default 0.25).
    #[must_use]
    pub fn holiday_damping(mut self, damping: f64) -> PopulationSpec {
        self.holiday_damping = damping.clamp(0.0, 1.0);
        self
    }

    /// The region this spec generates for.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Generates the population's traces.
    pub fn generate(&self) -> TraceSet {
        self.generate_detailed()
            .into_iter()
            .map(|(trace, _)| trace)
            .collect()
    }

    /// Generates traces together with each user's chronotype (useful for
    /// tests and for the Fig. 1 single-user experiment).
    pub fn generate_detailed(&self) -> Vec<(UserTrace, Chronotype)> {
        let mut out = Vec::with_capacity(self.users);
        for i in 0..self.users {
            // Derive a per-user RNG so insertion order never matters.
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64),
            );
            let chronotype = Chronotype::sample(&mut rng);
            let trace = self.generate_user(&format!("{}{}", self.prefix, i), chronotype, &mut rng);
            out.push((trace, chronotype));
        }
        out
    }

    /// Generates one user with an explicit chronotype and RNG.
    pub fn generate_user<R: Rng + ?Sized>(
        &self,
        id: &str,
        chronotype: Chronotype,
        rng: &mut R,
    ) -> UserTrace {
        // Personal rate: log-normal-ish spread around the population mean.
        let rate = (self.posts_per_day * normal(rng, 0.0, 0.5).exp())
            .clamp(self.posts_per_day * 0.25, self.posts_per_day * 6.0);
        // Personal rhythm: chronotype, a continuous phase offset (people
        // are not quantized to whole-hour chronotypes), and idiosyncratic
        // per-hour noise.
        let personal = chronotype
            .personalize(&self.base_model)
            .rotated_fractional(normal(rng, 0.0, 0.75).clamp(-2.0, 2.0));
        let weekday_weights = jitter_weights(personal.weights(), rng);
        let weekend_weights = jitter_weights(
            DiurnalModel::from_weights(weekday_weights)
                .weekend()
                .weights(),
            rng,
        );

        let zone = self.region.zone();
        let holidays = self.region.holidays();
        let mut posts = Vec::new();
        for date in self.start.iter_to(self.end) {
            let weights = if date.weekday().is_weekend() {
                &weekend_weights
            } else {
                &weekday_weights
            };
            let mut day_rate = rate;
            if holidays.contains(date) {
                day_rate *= self.holiday_damping;
            }
            let n = poisson(rng, day_rate);
            for _ in 0..n {
                let hour = sample_discrete(rng, weights) as u8;
                let minute = rng.gen_range(0u8..60);
                let second = rng.gen_range(0u8..60);
                let local =
                    match crowdtz_time::CivilDateTime::from_date_time(date, hour, minute, second) {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                if let Ok(ts) = zone.from_local(local) {
                    posts.push(ts);
                }
            }
        }
        UserTrace::new(id, posts)
    }
}

/// Applies multiplicative idiosyncratic noise to hourly weights.
fn jitter_weights<R: Rng + ?Sized>(weights: &[f64; 24], rng: &mut R) -> [f64; 24] {
    let mut out = [0.0; 24];
    for (dst, &w) in out.iter_mut().zip(weights.iter()) {
        let factor = normal(rng, 0.0, 0.3).exp().clamp(0.4, 2.5);
        *dst = w * factor;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtz_stats::Histogram24;
    use crowdtz_time::{RegionDb, Timestamp, TzOffset};

    fn region(id: &str) -> Region {
        RegionDb::extended().get(&id.into()).unwrap().clone()
    }

    fn hour_histogram(traces: &TraceSet, offset: TzOffset) -> Histogram24 {
        let mut h = Histogram24::new();
        for t in traces.iter() {
            for &p in t.posts() {
                h.add(p.hour_in_offset(offset));
            }
        }
        h
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PopulationSpec::new(region("germany")).users(5).seed(99);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = PopulationSpec::new(region("germany")).users(5);
        let a = base.clone().seed(1).generate();
        let b = base.seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn population_shows_diurnal_pattern_in_local_time() {
        let spec = PopulationSpec::new(region("japan")) // fixed UTC+9, no DST
            .users(50)
            .seed(3)
            .posts_per_day(1.0);
        let traces = spec.generate();
        let hist = hour_histogram(&traces, TzOffset::from_hours(9).unwrap());
        let d = hist.normalized().unwrap();
        // Peak in the evening, trough at night (local time).
        assert!((17..=23).contains(&d.peak_hour()), "peak {}", d.peak_hour());
        assert!(
            (1..=7).contains(&d.trough_hour()),
            "trough {}",
            d.trough_hour()
        );
        // Night activity well below evening.
        assert!(d.get(4) < d.get(21) / 4.0);
    }

    #[test]
    fn utc_profile_is_shifted_by_offset() {
        let spec = PopulationSpec::new(region("malaysia")) // fixed UTC+8
            .users(60)
            .seed(5)
            .posts_per_day(1.0);
        let traces = spec.generate();
        let local = hour_histogram(&traces, TzOffset::from_hours(8).unwrap())
            .normalized()
            .unwrap();
        let utc = hour_histogram(&traces, TzOffset::UTC).normalized().unwrap();
        // UTC profile = local profile rotated by −8.
        let rotated = local.shifted(-8);
        let emd = crowdtz_stats::linear_emd(&rotated, &utc);
        assert!(emd < 1e-9, "emd {emd}");
    }

    #[test]
    fn holidays_are_quieter() {
        let r = region("germany");
        let spec = PopulationSpec::new(r.clone())
            .users(40)
            .seed(8)
            .posts_per_day(2.0)
            .holiday_damping(0.1);
        let traces = spec.generate();
        // Posts on Dec 25 vs a regular Tuesday in March, counted in local days.
        let zone = r.zone();
        let count_on = |m: u8, d: u8| {
            let date = Date::new(2016, m, d).unwrap();
            traces
                .iter()
                .flat_map(|t| t.posts().iter())
                .filter(|&&p| zone.to_local(p).date() == date)
                .count()
        };
        let christmas = count_on(12, 25);
        let regular: usize = [(3u8, 8u8), (3, 15), (3, 22)]
            .iter()
            .map(|&(m, d)| count_on(m, d))
            .sum::<usize>()
            / 3;
        assert!(
            (christmas as f64) < regular as f64 * 0.6,
            "christmas {christmas} vs regular {regular}"
        );
    }

    #[test]
    fn period_bounds_are_respected() {
        let r = region("italy");
        let start = Date::new(2016, 6, 1).unwrap();
        let end = Date::new(2016, 6, 30).unwrap();
        let spec = PopulationSpec::new(r.clone())
            .users(10)
            .seed(4)
            .posts_per_day(2.0)
            .period(start, end);
        let traces = spec.generate();
        // All posts within June 2016 ± a day of zone slack.
        let lo = Timestamp::from_civil_utc(
            crowdtz_time::CivilDateTime::new(2016, 5, 31, 0, 0, 0).unwrap(),
        );
        let hi = Timestamp::from_civil_utc(
            crowdtz_time::CivilDateTime::new(2016, 7, 2, 0, 0, 0).unwrap(),
        );
        for t in traces.iter() {
            for &p in t.posts() {
                assert!(p >= lo && p < hi);
            }
        }
    }

    #[test]
    fn prefix_controls_ids() {
        let spec = PopulationSpec::new(region("france"))
            .users(3)
            .prefix("anon")
            .seed(1);
        let traces = spec.generate();
        assert!(traces.get("anon0").is_some());
        assert!(traces.get("anon2").is_some());
    }

    #[test]
    fn yearly_volume_scales_with_rate() {
        let r = region("france");
        let low = PopulationSpec::new(r.clone())
            .users(20)
            .seed(10)
            .posts_per_day(0.2)
            .generate()
            .total_posts();
        let high = PopulationSpec::new(r)
            .users(20)
            .seed(10)
            .posts_per_day(2.0)
            .generate()
            .total_posts();
        assert!(high > low * 5);
    }

    #[test]
    fn detailed_exposes_chronotypes() {
        let spec = PopulationSpec::new(region("germany")).users(30).seed(12);
        let detailed = spec.generate_detailed();
        assert_eq!(detailed.len(), 30);
        let distinct: std::collections::HashSet<_> = detailed.iter().map(|(_, c)| *c).collect();
        assert!(distinct.len() >= 2, "expected chronotype variety");
    }

    #[test]
    fn dst_region_shows_seasonal_utc_shift() {
        // Germany (EU DST): UTC activity in July runs one hour earlier
        // than in January, because local rhythm is fixed but UTC+2 applies.
        let spec = PopulationSpec::new(region("germany"))
            .users(80)
            .seed(21)
            .posts_per_day(1.5);
        let traces = spec.generate();
        let in_month = |m: u8| {
            let mut h = Histogram24::new();
            for t in traces.iter() {
                for &p in t.posts() {
                    let c = p.to_civil_utc().unwrap();
                    if c.date().month_number() == m {
                        h.add(c.hour());
                    }
                }
            }
            h.normalized().unwrap()
        };
        let january = in_month(1);
        let july = in_month(7);
        // July profile shifted +1 should match January better than unshifted.
        let shifted = crowdtz_stats::linear_emd(&july.shifted(1), &january);
        let unshifted = crowdtz_stats::linear_emd(&july, &january);
        assert!(
            shifted < unshifted,
            "shifted {shifted} vs unshifted {unshifted}"
        );
    }
}
