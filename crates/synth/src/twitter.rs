//! The synthetic Twitter ground-truth dataset (paper Table I).
//!
//! The paper builds region profiles from the 2016 Twitter stream grab [7]:
//! users whose hometown is known, filtered to *active* users (≥ 30 posts),
//! yielding the Table I counts. This module generates a statistically
//! equivalent dataset: per-region populations with the right relative
//! sizes, a tail of casual (sub-threshold) users, and a sprinkling of bots
//! with flat profiles, so every cleaning step of the paper has something
//! real to do.

use std::fmt;

use crowdtz_time::{Date, Region, RegionDb, RegionId, TraceSet};

use crate::bots::{generate_bot, BotSpec};
use crate::population::PopulationSpec;

/// A generated multi-region ground-truth dataset.
#[derive(Debug, Clone)]
pub struct TwitterDataset {
    regions: Vec<(Region, TraceSet)>,
    active_threshold: usize,
}

impl TwitterDataset {
    /// Starts building a dataset.
    pub fn builder() -> TwitterDatasetBuilder {
        TwitterDatasetBuilder::default()
    }

    /// The traces of one region (including casual users and bots).
    pub fn region_traces(&self, id: &RegionId) -> Option<&TraceSet> {
        self.regions
            .iter()
            .find(|(r, _)| r.id() == id)
            .map(|(_, t)| t)
    }

    /// The region metadata and traces, in generation order.
    pub fn regions(&self) -> impl Iterator<Item = (&Region, &TraceSet)> {
        self.regions.iter().map(|(r, t)| (r, t))
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the dataset has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The active-user filter threshold (paper: 30 posts).
    pub fn active_threshold(&self) -> usize {
        self.active_threshold
    }

    /// Table I reproduction: `(region name, active user count)` rows,
    /// where *active* means at least [`Self::active_threshold`] posts.
    pub fn active_user_counts(&self) -> Vec<(String, usize)> {
        self.regions
            .iter()
            .map(|(r, t)| {
                (
                    r.name().to_owned(),
                    t.filter_active(self.active_threshold).len(),
                )
            })
            .collect()
    }

    /// All traces of all regions merged into one set (the "generic"
    /// dataset of Fig. 2b), user ids already region-prefixed.
    pub fn merged(&self) -> TraceSet {
        let mut out = TraceSet::new();
        for (_, traces) in &self.regions {
            for t in traces.iter() {
                out.insert(t.clone());
            }
        }
        out
    }

    /// Total posts across all regions.
    pub fn total_posts(&self) -> usize {
        self.regions.iter().map(|(_, t)| t.total_posts()).sum()
    }
}

impl fmt::Display for TwitterDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TwitterDataset({} regions, {} posts)",
            self.regions.len(),
            self.total_posts()
        )
    }
}

/// Builder for [`TwitterDataset`].
#[derive(Debug, Clone)]
pub struct TwitterDatasetBuilder {
    db: RegionDb,
    scale: f64,
    seed: u64,
    posts_per_day: f64,
    casual_fraction: f64,
    bot_fraction: f64,
    active_threshold: usize,
    start: Date,
    end: Date,
}

impl Default for TwitterDatasetBuilder {
    /// Table I regions at 10% scale, the paper's thresholds, year 2016.
    fn default() -> TwitterDatasetBuilder {
        TwitterDatasetBuilder {
            db: RegionDb::table1(),
            scale: 0.1,
            seed: 2016,
            posts_per_day: 0.4,
            casual_fraction: 0.25,
            bot_fraction: 0.02,
            active_threshold: 30,
            start: Date::new(2016, 1, 1).expect("static date"),
            end: Date::new(2016, 12, 31).expect("static date"),
        }
    }
}

impl TwitterDatasetBuilder {
    /// Uses a custom region database instead of Table I.
    #[must_use]
    pub fn regions(mut self, db: RegionDb) -> TwitterDatasetBuilder {
        self.db = db;
        self
    }

    /// Scales every region's Table I user count by this factor (default
    /// 0.1; 1.0 reproduces the full 22,576-user dataset).
    #[must_use]
    pub fn scale(mut self, scale: f64) -> TwitterDatasetBuilder {
        self.scale = scale.max(0.0);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> TwitterDatasetBuilder {
        self.seed = seed;
        self
    }

    /// Mean posts per active user per day.
    #[must_use]
    pub fn posts_per_day(mut self, rate: f64) -> TwitterDatasetBuilder {
        self.posts_per_day = rate.max(0.0);
        self
    }

    /// Fraction of extra casual users generated on top of the active count
    /// (they post too rarely to pass the 30-post filter).
    #[must_use]
    pub fn casual_fraction(mut self, fraction: f64) -> TwitterDatasetBuilder {
        self.casual_fraction = fraction.clamp(0.0, 10.0);
        self
    }

    /// Fraction of extra bot users with flat profiles.
    #[must_use]
    pub fn bot_fraction(mut self, fraction: f64) -> TwitterDatasetBuilder {
        self.bot_fraction = fraction.clamp(0.0, 10.0);
        self
    }

    /// The active-user post threshold (paper: 30).
    #[must_use]
    pub fn active_threshold(mut self, threshold: usize) -> TwitterDatasetBuilder {
        self.active_threshold = threshold;
        self
    }

    /// Observation period (inclusive local dates).
    #[must_use]
    pub fn period(mut self, start: Date, end: Date) -> TwitterDatasetBuilder {
        self.start = start;
        self.end = end;
        self
    }

    /// Generates the dataset.
    pub fn build(&self) -> TwitterDataset {
        let mut regions = Vec::new();
        for (idx, region) in self.db.iter().enumerate() {
            let Some(count) = region.twitter_active_users() else {
                continue;
            };
            let actives = ((f64::from(count) * self.scale).round() as usize).max(1);
            let region_seed = self.seed.wrapping_add((idx as u64 + 1) * 0x1234_5678);

            // Active users: enough volume to pass the threshold.
            let mut traces = PopulationSpec::new(region.clone())
                .users(actives)
                .seed(region_seed)
                .posts_per_day(self.posts_per_day)
                .period(self.start, self.end)
                .generate();

            // Casual users: an extra tail below the activity threshold.
            let casuals = (actives as f64 * self.casual_fraction).round() as usize;
            if casuals > 0 {
                let casual_traces = PopulationSpec::new(region.clone())
                    .users(casuals)
                    .seed(region_seed ^ 0xCA5A)
                    .posts_per_day(0.02) // ~7 posts/year ≪ 30
                    .period(self.start, self.end)
                    .prefix(format!("{}-casual", region.id()))
                    .generate();
                for t in casual_traces.iter() {
                    traces.insert(t.clone());
                }
            }

            // Bots: flat UTC-uniform posters.
            let bots = (actives as f64 * self.bot_fraction).round() as usize;
            for b in 0..bots {
                let spec = BotSpec {
                    posts_per_day: 1.0,
                    start: self.start,
                    end: self.end,
                };
                traces.insert(generate_bot(
                    &format!("{}-bot{}", region.id(), b),
                    &spec,
                    region_seed ^ (b as u64),
                ));
            }

            regions.push((region.clone(), traces));
        }
        TwitterDataset {
            regions,
            active_threshold: self.active_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwitterDataset {
        TwitterDataset::builder().scale(0.01).seed(1).build()
    }

    #[test]
    fn builds_all_table1_regions() {
        let ds = small();
        assert_eq!(ds.len(), 14);
        assert!(!ds.is_empty());
        assert!(ds.total_posts() > 0);
    }

    #[test]
    fn counts_scale_with_table1() {
        let ds = TwitterDataset::builder()
            .scale(0.02)
            .casual_fraction(0.0)
            .bot_fraction(0.0)
            .seed(3)
            .build();
        // Brazil (3763) should have ~75 users, Finland (73) ~1–2.
        let brazil = ds.region_traces(&"brazil".into()).unwrap().len();
        let finland = ds.region_traces(&"finland".into()).unwrap().len();
        assert!((70..=81).contains(&brazil), "brazil {brazil}");
        assert!((1..=2).contains(&finland), "finland {finland}");
    }

    #[test]
    fn active_counts_exclude_casuals() {
        let ds = TwitterDataset::builder()
            .scale(0.01)
            .casual_fraction(1.0)
            .bot_fraction(0.0)
            .seed(5)
            .build();
        for (region, traces) in ds.regions() {
            let active = traces.filter_active(30).len();
            let total = traces.len();
            // Casual users should mostly fail the 30-post threshold.
            assert!(
                active < total,
                "{}: active {active} == total {total}",
                region.name()
            );
        }
    }

    #[test]
    fn table1_rows_have_every_region_name() {
        let ds = small();
        let rows = ds.active_user_counts();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["Brazil", "Germany", "Japan", "United Kingdom"] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn merged_contains_all_users() {
        let ds = small();
        let merged = ds.merged();
        let sum: usize = ds.regions().map(|(_, t)| t.len()).sum();
        assert_eq!(merged.len(), sum);
    }

    #[test]
    fn deterministic() {
        let a = TwitterDataset::builder().scale(0.005).seed(9).build();
        let b = TwitterDataset::builder().scale(0.005).seed(9).build();
        assert_eq!(a.merged(), b.merged());
    }

    #[test]
    fn bots_present_when_requested() {
        let ds = TwitterDataset::builder()
            .scale(0.02)
            .bot_fraction(0.1)
            .seed(2)
            .build();
        let germany = ds.region_traces(&"germany".into()).unwrap();
        assert!(germany.get("germany-bot0").is_some());
    }

    #[test]
    fn display() {
        let ds = small();
        assert!(ds.to_string().contains("14 regions"));
    }
}
