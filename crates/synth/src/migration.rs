//! Longitudinal migration fixture: one crowd whose home region switches
//! mid-series.
//!
//! The drift tracker's job (`crowdtz-core::DriftTracker`) is to spot a
//! community whose time-zone composition moves — a market's user base
//! migrating after an exit scam, a forum re-homed on a different
//! continent. [`MigrationSpec`] builds the controlled version of that
//! story: `rounds` consecutive activity periods for the *same* user ids,
//! generated in the `from` region up to `switch_round` and in the `to`
//! region from it onward. Feed the rounds to a windowed pipeline with
//! one bucket per round and the trajectory must flag its change-point at
//! `switch_round` (within one bucket — zone conversion smears the round
//! edges by a few hours).
//!
//! Deterministic given the seed, like everything in this crate.

use crowdtz_time::{Date, Region, Timestamp, TraceSet};

use crate::population::PopulationSpec;

/// Builder for a population that migrates between regions mid-series.
///
/// ```
/// use crowdtz_synth::MigrationSpec;
/// use crowdtz_time::RegionDb;
///
/// let db = RegionDb::extended();
/// let spec = MigrationSpec::new(
///     db.get(&"new-york".into()).unwrap().clone(),  // UTC−5
///     db.get(&"china".into()).unwrap().clone(),     // UTC+8
/// )
/// .users(6)
/// .rounds(4)
/// .switch_round(2)
/// .seed(9);
/// let rounds = spec.generate();
/// assert_eq!(rounds.len(), 4);
/// assert!(rounds.iter().all(|r| r.len() == 6));
/// ```
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    from: Region,
    to: Region,
    users: usize,
    rounds: usize,
    switch_round: usize,
    round_days: usize,
    seed: u64,
    posts_per_day: f64,
    start: Date,
    prefix: String,
}

impl MigrationSpec {
    /// A spec migrating from `from` to `to`: 12 users, 8 rounds of 14
    /// days starting 2016-01-04, the switch at round 4, one post per
    /// user-day.
    pub fn new(from: Region, to: Region) -> MigrationSpec {
        MigrationSpec {
            from,
            to,
            users: 12,
            rounds: 8,
            switch_round: 4,
            round_days: 14,
            seed: 0,
            posts_per_day: 1.0,
            start: Date::new(2016, 1, 4).expect("static date"),
            prefix: "mig-u".to_owned(),
        }
    }

    /// Sets the number of users (the same ids post in every round).
    #[must_use]
    pub fn users(mut self, users: usize) -> MigrationSpec {
        self.users = users;
        self
    }

    /// Sets the total number of rounds.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> MigrationSpec {
        self.rounds = rounds;
        self
    }

    /// Sets the first round generated in the `to` region.
    #[must_use]
    pub fn switch_round(mut self, round: usize) -> MigrationSpec {
        self.switch_round = round;
        self
    }

    /// Sets the length of one round in days.
    #[must_use]
    pub fn round_days(mut self, days: usize) -> MigrationSpec {
        self.round_days = days.max(1);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> MigrationSpec {
        self.seed = seed;
        self
    }

    /// Sets the mean posts per user per day.
    #[must_use]
    pub fn posts_per_day(mut self, rate: f64) -> MigrationSpec {
        self.posts_per_day = rate;
        self
    }

    /// The configured round count.
    pub fn round_count(&self) -> usize {
        self.rounds
    }

    /// The first round generated in the `to` region — the ground-truth
    /// change-point.
    pub fn ground_truth_round(&self) -> usize {
        self.switch_round
    }

    /// Seconds of event time one round spans — the natural window
    /// bucket width for this fixture.
    pub fn round_secs(&self) -> i64 {
        self.round_days as i64 * 86_400
    }

    /// The first (local) date of round `round`.
    pub fn round_start(&self, round: usize) -> Date {
        self.start
            .add_days((round * self.round_days) as i64)
            .expect("fixture dates stay in range")
    }

    /// Generates round `round`: every user's posts for that period, in
    /// the `from` region before [`switch_round`](Self::switch_round)
    /// and in the `to` region from it on. Per-round seeds differ, so
    /// activity varies round to round the way real weeks do.
    pub fn generate_round(&self, round: usize) -> TraceSet {
        let region = if round < self.switch_round {
            &self.from
        } else {
            &self.to
        };
        let end = self
            .round_start(round + 1)
            .add_days(-1)
            .expect("fixture dates stay in range");
        PopulationSpec::new(region.clone())
            .users(self.users)
            .seed(
                self.seed
                    .wrapping_add((round as u64).wrapping_mul(0x517C_C1B7_2722_0A95)),
            )
            .period(self.round_start(round), end)
            .posts_per_day(self.posts_per_day)
            .prefix(self.prefix.clone())
            .generate()
    }

    /// Generates every round in order.
    pub fn generate(&self) -> Vec<TraceSet> {
        (0..self.rounds).map(|r| self.generate_round(r)).collect()
    }

    /// Round `round` flattened to the `(user, timestamp)` pairs the
    /// ingestion APIs take.
    pub fn round_posts(&self, round: usize) -> Vec<(String, Timestamp)> {
        let mut posts: Vec<(String, Timestamp)> = self
            .generate_round(round)
            .iter()
            .flat_map(|trace| {
                let user = trace.id().to_owned();
                trace
                    .posts()
                    .iter()
                    .map(move |&ts| (user.clone(), ts))
                    .collect::<Vec<_>>()
            })
            .collect();
        posts.sort();
        posts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtz_time::{RegionDb, TzOffset};

    fn spec() -> MigrationSpec {
        let db = RegionDb::extended();
        MigrationSpec::new(
            db.get(&"new-york".into()).unwrap().clone(),
            db.get(&"china".into()).unwrap().clone(),
        )
        .users(8)
        .rounds(6)
        .switch_round(3)
        .round_days(7)
        .seed(17)
        .posts_per_day(1.5)
    }

    #[test]
    fn rounds_are_deterministic_and_user_stable() {
        let s = spec();
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a, b);
        for round in &a {
            assert_eq!(round.len(), 8);
            assert!(round.get("mig-u0").is_some(), "same ids every round");
        }
    }

    #[test]
    fn rounds_vary_but_stay_inside_their_period() {
        let s = spec();
        assert_ne!(s.generate_round(0), s.generate_round(1));
        for round in 0..s.round_count() {
            let lo = Timestamp::from_secs((s.round_start(round).days_since_epoch() - 1) * 86_400);
            let hi =
                Timestamp::from_secs((s.round_start(round + 1).days_since_epoch() + 1) * 86_400);
            for (_, ts) in s.round_posts(round) {
                assert!(ts >= lo && ts < hi, "round {round} leaked {ts}");
            }
        }
    }

    #[test]
    fn activity_shifts_from_west_to_east_at_the_switch() {
        // Mean local-evening activity: before the switch the crowd is
        // UTC−5, after it UTC+8 — the UTC hour histograms of the two
        // halves must disagree sharply.
        let s = spec();
        let utc_hours = |round: usize| {
            let mut h = [0u32; 24];
            for (_, ts) in s.round_posts(round) {
                h[usize::from(ts.hour_in_offset(TzOffset::UTC))] += 1;
            }
            h
        };
        let before = utc_hours(s.ground_truth_round() - 1);
        let after = utc_hours(s.ground_truth_round());
        let total = |h: &[u32; 24]| h.iter().sum::<u32>() as f64;
        let l1: f64 = before
            .iter()
            .zip(&after)
            .map(|(&b, &a)| (f64::from(b) / total(&before) - f64::from(a) / total(&after)).abs())
            .sum();
        assert!(l1 > 0.8, "migration must move the UTC profile, l1 {l1}");
    }
}
