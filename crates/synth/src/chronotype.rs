//! Chronotypes: systematic per-person deviations from the standard rhythm.
//!
//! §IV.A of the paper: *"Despite a common nationality, the habits of two
//! different people are not exactly the same. For example, youngsters tend
//! to go to sleep later than older people, parents wake up earlier than
//! teenagers, and so on."* These within-region differences are what spreads
//! a single-country placement into a Gaussian with σ ≈ 2.5 instead of a
//! spike; the chronotypes below reproduce them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::diurnal::DiurnalModel;
use crate::sampling::sample_discrete;

/// A person's systematic daily-rhythm type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Chronotype {
    /// The population-average rhythm.
    #[default]
    Typical,
    /// Up early, asleep early — the whole curve runs about an hour early.
    EarlyBird,
    /// Awake late into the night; curve runs late with a heavier night tail.
    NightOwl,
    /// Early mornings forced by children; suppressed late evening.
    Parent,
    /// Very late rise, activity concentrated in the evening and night.
    Teenager,
}

impl Chronotype {
    /// All chronotypes.
    pub const ALL: [Chronotype; 5] = [
        Chronotype::Typical,
        Chronotype::EarlyBird,
        Chronotype::NightOwl,
        Chronotype::Parent,
        Chronotype::Teenager,
    ];

    /// Population mixing weights (sum to 1).
    pub fn population_weights() -> [f64; 5] {
        [0.45, 0.15, 0.20, 0.12, 0.08]
    }

    /// Samples a chronotype from the population mix.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Chronotype {
        Chronotype::ALL[sample_discrete(rng, &Chronotype::population_weights())]
    }

    /// The typical phase shift of this chronotype relative to the standard
    /// rhythm, in hours (positive = later).
    pub fn phase_shift(self) -> i32 {
        match self {
            Chronotype::Typical => 0,
            Chronotype::EarlyBird | Chronotype::Parent => -1,
            Chronotype::NightOwl => 1,
            Chronotype::Teenager => 2,
        }
    }

    /// Derives this chronotype's personal rhythm from a base model.
    pub fn personalize(self, base: &DiurnalModel) -> DiurnalModel {
        let shifted = base.rotated(self.phase_shift());
        match self {
            Chronotype::Typical => shifted,
            Chronotype::EarlyBird => {
                // Slightly flatter evening: blend a bit towards the shifted
                // base with the night tail clipped.
                let mut w = *shifted.weights();
                for h in [22usize, 23, 0, 1] {
                    w[h] *= 0.6;
                }
                for h in [6usize, 7, 8] {
                    w[h] *= 1.3;
                }
                DiurnalModel::from_weights(w)
            }
            Chronotype::NightOwl => {
                let mut w = *shifted.weights();
                for h in [23usize, 0, 1, 2] {
                    w[h] *= 1.8;
                }
                for h in [7usize, 8, 9] {
                    w[h] *= 0.6;
                }
                DiurnalModel::from_weights(w)
            }
            Chronotype::Parent => {
                let mut w = *shifted.weights();
                for h in [6usize, 7] {
                    w[h] *= 1.6;
                }
                for h in [22usize, 23, 0] {
                    w[h] *= 0.5;
                }
                DiurnalModel::from_weights(w)
            }
            Chronotype::Teenager => {
                let mut w = *shifted.weights();
                for h in [0usize, 1, 2] {
                    w[h] *= 1.6;
                }
                for h in [6usize, 7, 8, 9] {
                    w[h] *= 0.4;
                }
                DiurnalModel::from_weights(w)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = Chronotype::population_weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_covers_all_types() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(Chronotype::sample(&mut rng));
        }
        assert_eq!(seen.len(), Chronotype::ALL.len());
    }

    #[test]
    fn typical_is_pure_base() {
        let base = DiurnalModel::standard();
        assert_eq!(Chronotype::Typical.personalize(&base), base);
    }

    #[test]
    fn night_owl_shifts_late() {
        let base = DiurnalModel::standard();
        let owl = Chronotype::NightOwl.personalize(&base).distribution();
        let typical = base.distribution();
        // More mass after midnight.
        let owl_night: f64 = [0usize, 1, 2].iter().map(|&h| owl.get(h)).sum();
        let typ_night: f64 = [0usize, 1, 2].iter().map(|&h| typical.get(h)).sum();
        assert!(owl_night > typ_night);
    }

    #[test]
    fn early_bird_shifts_early() {
        let base = DiurnalModel::standard();
        let bird = Chronotype::EarlyBird.personalize(&base).distribution();
        let typical = base.distribution();
        let bird_morning: f64 = (6..=8).map(|h| bird.get(h)).sum();
        let typ_morning: f64 = (6..=8).map(|h| typical.get(h)).sum();
        assert!(bird_morning > typ_morning);
        assert!(bird.peak_hour() < typical.peak_hour());
    }

    #[test]
    fn teenager_suppresses_morning() {
        let base = DiurnalModel::standard();
        let teen = Chronotype::Teenager.personalize(&base).distribution();
        let typical = base.distribution();
        let teen_morning: f64 = (6..=9).map(|h| teen.get(h)).sum();
        let typ_morning: f64 = (6..=9).map(|h| typical.get(h)).sum();
        assert!(teen_morning < typ_morning);
    }

    #[test]
    fn all_personalizations_keep_evening_peak_band() {
        // Whatever the chronotype, the peak stays within the broad evening
        // band (the paper's profiles all peak 17–23 local, ±2h chronotype).
        let base = DiurnalModel::standard();
        for ct in Chronotype::ALL {
            let peak = ct.personalize(&base).distribution().peak_hour();
            assert!((17..=23).contains(&peak) || peak <= 1, "{ct:?} peak {peak}");
        }
    }

    #[test]
    fn phase_shifts_are_small() {
        for ct in Chronotype::ALL {
            assert!(ct.phase_shift().abs() <= 2);
        }
    }

    #[test]
    fn default_is_typical() {
        assert_eq!(Chronotype::default(), Chronotype::Typical);
    }
}
