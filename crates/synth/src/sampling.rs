//! Low-level random sampling helpers.
//!
//! Implemented here (rather than pulling in `rand_distr`) to keep the
//! dependency set to the approved list; a Poisson sampler and a discrete
//! (categorical) sampler are all the generators need.

use rand::Rng;

/// Samples a Poisson-distributed count with the given mean.
///
/// Uses Knuth's multiplication method for small `lambda` and a normal
/// approximation (rounded, clamped at 0) for large `lambda`, which is more
/// than adequate for per-day post counts.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let value = lambda + lambda.sqrt() * z;
        value.round().max(0.0) as u64
    }
}

/// Samples a normally distributed value via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples an index from a (not necessarily normalized) weight vector.
///
/// # Panics
///
/// Panics if `weights` is empty or all weights are non-positive.
pub fn sample_discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "sample_discrete: empty weights");
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    assert!(total > 0.0, "sample_discrete: no positive mass");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        let w = w.max(0.0);
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let lambda = 3.5;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let lambda = 100.0;
        let samples: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
        assert!((var - lambda).abs() < 10.0, "var {var}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_discrete(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn discrete_single_bucket() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_discrete(&mut rng, &[0.7]), 0);
    }

    #[test]
    #[should_panic(expected = "no positive mass")]
    fn discrete_rejects_zero_mass() {
        let mut rng = StdRng::seed_from_u64(6);
        sample_discrete(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn discrete_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        sample_discrete(&mut rng, &[]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| poisson(&mut rng, 5.0)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| poisson(&mut rng, 5.0)).collect()
        };
        assert_eq!(a, b);
    }
}
