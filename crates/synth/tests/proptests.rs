//! Property-based tests for the synthetic-population generators.

use crowdtz_synth::{generate_bot, BotSpec, Chronotype, DiurnalModel, PopulationSpec};
use crowdtz_time::{Date, HolidayCalendar, Region, RegionDb, TzOffset, Zone};
use proptest::prelude::*;

fn fixed_region(offset: i32) -> Region {
    Region::new(
        "prop",
        "Prop",
        Zone::fixed(TzOffset::from_hours(offset).unwrap()),
        None,
        HolidayCalendar::none(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generation is deterministic in (seed, users, rate, region).
    #[test]
    fn generation_deterministic(seed in 0u64..10_000, users in 1usize..12) {
        let spec = PopulationSpec::new(fixed_region(3)).users(users).seed(seed);
        prop_assert_eq!(spec.generate(), spec.generate());
    }

    /// Every post falls within the configured period (± a day of zone slack).
    #[test]
    fn posts_within_period(seed in 0u64..5_000, offset in -11i32..=12) {
        let start = Date::new(2016, 4, 1).unwrap();
        let end = Date::new(2016, 4, 30).unwrap();
        let traces = PopulationSpec::new(fixed_region(offset))
            .users(5)
            .seed(seed)
            .posts_per_day(1.0)
            .period(start, end)
            .generate();
        let lo = (start.days_since_epoch() - 1) * 86_400;
        let hi = (end.days_since_epoch() + 2) * 86_400;
        for t in traces.iter() {
            for &p in t.posts() {
                prop_assert!(p.as_secs() >= lo && p.as_secs() < hi);
            }
        }
    }

    /// Higher posting rates yield more posts (statistically, 5× margin).
    #[test]
    fn rate_monotonicity(seed in 0u64..1_000) {
        let base = PopulationSpec::new(fixed_region(0)).users(10).seed(seed);
        let low = base.clone().posts_per_day(0.1).generate().total_posts();
        let high = base.posts_per_day(2.0).generate().total_posts();
        prop_assert!(high > low, "high {high} low {low}");
    }

    /// The local-hour profile of any fixed-offset population peaks in the
    /// evening and troughs at night.
    #[test]
    fn diurnal_shape_holds_at_any_offset(offset in -11i32..=12, seed in 0u64..500) {
        let traces = PopulationSpec::new(fixed_region(offset))
            .users(30)
            .seed(seed)
            .posts_per_day(1.0)
            .generate();
        let mut hist = crowdtz_stats::Histogram24::new();
        let tz = TzOffset::from_hours(offset).unwrap();
        for t in traces.iter() {
            for &p in t.posts() {
                hist.add(p.hour_in_offset(tz));
            }
        }
        let d = hist.normalized().unwrap();
        // The evening plateau wraps midnight for night-owl-heavy samples.
        prop_assert!(
            (17..=23).contains(&d.peak_hour()) || d.peak_hour() == 0,
            "peak {}",
            d.peak_hour()
        );
        prop_assert!(
            (1..=7).contains(&d.trough_hour()),
            "trough {}",
            d.trough_hour()
        );
    }

    /// Fractional rotation: rotating by whole hours matches integer
    /// rotation, and rotating by x then −x returns the original.
    #[test]
    fn fractional_rotation_consistency(hours in -12i32..=12, frac in -3.0f64..3.0) {
        let m = DiurnalModel::standard();
        let whole = m.rotated(hours);
        let fractional = m.rotated_fractional(f64::from(hours));
        for h in 0..24 {
            prop_assert!((whole.weights()[h] - fractional.weights()[h]).abs() < 1e-9);
        }
        // Round trip within interpolation tolerance.
        let round = m.rotated_fractional(frac).rotated_fractional(-frac);
        for h in 0..24 {
            prop_assert!((round.weights()[h] - m.weights()[h]).abs() < 0.35,
                "h={h}: {} vs {}", round.weights()[h], m.weights()[h]);
        }
    }

    /// Chronotype personalization preserves non-negativity and mass.
    #[test]
    fn personalization_valid(idx in 0usize..5) {
        let ct = Chronotype::ALL[idx];
        let model = ct.personalize(&DiurnalModel::standard());
        for &w in model.weights() {
            prop_assert!(w >= 0.0 && w.is_finite());
        }
        prop_assert!(model.weights().iter().sum::<f64>() > 0.0);
    }

    /// Bots are deterministic and flat regardless of seed.
    #[test]
    fn bots_flat_for_any_seed(seed in 0u64..2_000) {
        let trace = generate_bot("b", &BotSpec::default(), seed);
        prop_assert!(trace.len() > 200);
        let hist: crowdtz_stats::Histogram24 = trace
            .posts()
            .iter()
            .map(|&t| t.hour_in_offset(TzOffset::UTC))
            .collect();
        let d = hist.normalized().unwrap();
        let emd = crowdtz_stats::circular_emd(&d, &crowdtz_stats::Distribution24::uniform());
        prop_assert!(emd < 0.6, "bot emd {emd}");
    }

    /// Table-I regions all generate non-empty active populations.
    #[test]
    fn every_table1_region_generates(seed in 0u64..100) {
        let db = RegionDb::table1();
        for region in db.iter().take(3) {
            let traces = PopulationSpec::new(region.clone())
                .users(3)
                .seed(seed)
                .posts_per_day(0.5)
                .generate();
            prop_assert_eq!(traces.len(), 3);
            prop_assert!(traces.total_posts() > 0);
        }
    }
}
