//! The `crowdtz-serve` binary: bind, serve, run until killed.
//!
//! ```text
//! crowdtz-serve [ADDR] [--workers N] [--durable-root DIR]
//!               [--read-timeout-ms N] [--max-body-bytes N]
//!               [--crash-after N]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:0` (ephemeral port). The resolved
//! address is printed as `crowdtz-serve listening on http://<addr>` on
//! stdout and flushed before the first accept, so a parent process can
//! scrape it — the kill-and-restart suite does exactly that.
//!
//! `--crash-after N` is the fault-injection hook: the `N+1`-th ingest
//! batch aborts the process (SIGABRT) before anything is journaled,
//! giving the durability tests a deterministic crash point.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use crowdtz_serve::{serve, ServeConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: crowdtz-serve [ADDR] [--workers N] [--durable-root DIR] \
         [--read-timeout-ms N] [--max-body-bytes N] [--crash-after N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--durable-root" => match args.next() {
                Some(dir) => config.service.durable_root = Some(dir.into()),
                None => return usage(),
            },
            "--read-timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(0) => config.read_timeout = None,
                Some(ms) => config.read_timeout = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--max-body-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_body_bytes = n,
                None => return usage(),
            },
            "--crash-after" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.service.crash_after_batches = Some(n),
                None => return usage(),
            },
            addr if !addr.starts_with('-') => config.addr = addr.to_string(),
            _ => return usage(),
        }
    }

    let observer = crowdtz_obs::Observer::from_env();
    crowdtz_obs::install_global(std::sync::Arc::clone(&observer));
    let handle = match serve(config, Some(observer)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("crowdtz-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Flushed before the first line of traffic: parents scrape this.
    println!("crowdtz-serve listening on http://{}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    ExitCode::SUCCESS
}
