//! A minimal blocking HTTP/1.1 client for tests, benches and examples.
//!
//! Speaks exactly the subset the server does: `Content-Length` framing,
//! persistent connections, no redirects, no TLS. This is deliberately
//! not a general client — it exists so the black-box suites and the
//! throughput bench can drive the server without growing a dependency.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Cap on response bodies the client will buffer (snapshots of large
/// crowds are a few MB; 64 MiB is far beyond anything the server emits).
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(lowercased-name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The body (empty for `HEAD`).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Propagates the parse error on a non-JSON body.
    pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }
}

/// A persistent connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
            host: addr.to_string(),
        })
    }

    /// Sets the read timeout for responses.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and reads the response. `HEAD` responses are
    /// read headers-only regardless of their `Content-Length`.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses surface as
    /// `io::Error`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.host);
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Length: {}\r\nContent-Type: application/json\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body)?;
        }
        self.writer.flush()?;
        self.read_response(method == "HEAD")
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`request`](HttpClient::request).
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`request`](HttpClient::request).
    pub fn post_json(
        &mut self,
        path: &str,
        body: &serde_json::Value,
    ) -> io::Result<ClientResponse> {
        let bytes = serde_json::to_vec(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.request("POST", path, Some(&bytes))
    }

    /// Writes raw bytes straight onto the socket — the malformed-input
    /// suite uses this to send things `request` would never produce.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response off the connection (pairs with
    /// [`send_raw`](HttpClient::send_raw) for pipelining tests).
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses.
    pub fn read_response(&mut self, head_only: bool) -> io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let mut parts = status_line.splitn(3, ' ');
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return Err(bad(format!("malformed status line {status_line:?}")));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(bad(format!("unexpected protocol {version:?}")));
        }
        let status: u16 = code
            .parse()
            .map_err(|_| bad(format!("unparseable status {code:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad(format!("malformed header {line:?}")));
            };
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse::<usize>())
            .transpose()
            .map_err(|_| bad("unparseable Content-Length".to_string()))?
            .unwrap_or(0);
        if content_length > MAX_RESPONSE_BODY {
            return Err(bad(format!("response body of {content_length} bytes")));
        }
        let mut body = vec![0u8; if head_only { 0 } else { content_length }];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
