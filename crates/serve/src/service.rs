//! The analysis service: routes → tenant engines.
//!
//! [`AnalysisService`] is transport-light — it maps one parsed
//! [`Request`] to one [`Response`] against a
//! [`TenantRegistry`](crowdtz_core::TenantRegistry), with all per-route
//! metrics recorded out of band. The connection loop in `server.rs`
//! owns sockets; nothing here does I/O.
//!
//! # Route table
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | `POST` | `/v1/tenants/{forum}` | create a tenant (JSON config body, optional `window` object) |
//! | `POST` | `/v1/tenants/{forum}/ingest` | ingest delta batches, returns the writer watermark |
//! | `POST` | `/v1/tenants/{forum}/retract` | retract previously ingested posts (same body shape) |
//! | `GET`  | `/v1/tenants/{forum}/snapshot` | newest published report (`?publish=1` cuts a fresh one) |
//! | `GET`  | `/v1/tenants/{forum}/drift` | zone-count histogram (`?nonzero=1`, `?top=N`, `?publish=1`), or the longitudinal trajectory with `?trajectory=1` |
//! | `GET`  | `/v1/tenants` | list tenants |
//! | `GET`  | `/metrics` | Prometheus text exposition |
//! | `GET`  | `/healthz` | liveness |
//!
//! # The byte-identity contract
//!
//! `GET …/snapshot` returns **exactly** `serde_json::to_string(report)`
//! as the body — the same bytes the in-process engine's published report
//! serializes to — with the cut metadata (epoch, per-writer watermarks,
//! post total) in `X-Crowdtz-*` headers rather than a JSON envelope.
//! That is what lets `tests/serve_http.rs` pin the HTTP path against an
//! in-process replay with `assert_eq!` on raw bodies, the same way every
//! prior layer of this workspace was pinned.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crowdtz_core::{
    CoreError, IngestWriter, PublishedReport, Tenant, TenantConfig, TenantError, TenantRegistry,
    WindowConfig, ZoneGrid,
};
use crowdtz_obs::{labeled, Counter, Gauge, Histogram, Observer};
use crowdtz_time::Timestamp;

use crate::http::{Request, Response};

/// Route labels, also the `route` label values on `serve.*` metrics.
pub const ROUTES: &[&str] = &[
    "create", "ingest", "retract", "snapshot", "drift", "tenants", "metrics", "healthz", "other",
];

/// Per-route latency bounds: 10µs … 10s.
const LATENCY_BOUNDS: &[u64] = &[
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// The `serve.*` metric handles, resolved once at service construction.
#[derive(Debug)]
pub struct ServeMetrics {
    /// `serve.requests`: requests fully parsed and routed.
    pub requests: Counter,
    /// `serve.bytes_in` / `serve.bytes_out`: wire bytes per direction.
    pub bytes_in: Counter,
    /// See [`ServeMetrics::bytes_in`].
    pub bytes_out: Counter,
    /// `serve.responses|class=…`: one counter per status class.
    classes: BTreeMap<&'static str, Counter>,
    /// `serve.latency_ns|route=…`: handler wall time per route.
    latency: BTreeMap<&'static str, Histogram>,
    /// `serve.connections`: currently open connections.
    connections: Gauge,
    /// Backing count for the gauge (gauges are last-write-wins).
    open: AtomicI64,
    /// `serve.panics`: handler panics caught by the connection loop.
    /// The malformed-input suite asserts this stays zero.
    pub panics: Counter,
}

impl ServeMetrics {
    fn new(observer: &Observer) -> ServeMetrics {
        ServeMetrics {
            requests: observer.counter("serve.requests"),
            bytes_in: observer.counter("serve.bytes_in"),
            bytes_out: observer.counter("serve.bytes_out"),
            classes: ["1xx", "2xx", "3xx", "4xx", "5xx"]
                .into_iter()
                .map(|class| {
                    (
                        class,
                        observer.counter(&labeled("serve.responses", "class", class)),
                    )
                })
                .collect(),
            latency: ROUTES
                .iter()
                .map(|&route| {
                    (
                        route,
                        observer.histogram(
                            &labeled("serve.latency_ns", "route", route),
                            LATENCY_BOUNDS,
                        ),
                    )
                })
                .collect(),
            connections: observer.gauge("serve.connections"),
            open: AtomicI64::new(0),
            panics: observer.counter("serve.panics"),
        }
    }

    /// Tracks a connection opening (bumps the `serve.connections` gauge).
    pub fn conn_opened(&self) {
        let now = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.connections.set(now as f64);
    }

    /// Tracks a connection closing.
    pub fn conn_closed(&self) {
        let now = self.open.fetch_sub(1, Ordering::Relaxed) - 1;
        self.connections.set(now as f64);
    }

    /// Records one routed response: request count, status class, and
    /// handler latency.
    pub fn record(&self, route: &'static str, status: u16, elapsed_ns: u64) {
        self.requests.inc();
        let class = match status / 100 {
            1 => "1xx",
            2 => "2xx",
            3 => "3xx",
            4 => "4xx",
            _ => "5xx",
        };
        if let Some(counter) = self.classes.get(class) {
            counter.inc();
        }
        if let Some(hist) = self.latency.get(route) {
            hist.observe(elapsed_ns);
        }
    }
}

/// Service-level configuration (the server wraps this with socket
/// settings in [`ServeConfig`](crate::ServeConfig)).
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Directory under which durable tenants journal
    /// (`<root>/<tenant>`). `None` disables durable tenants: creating
    /// one returns `503`.
    pub durable_root: Option<PathBuf>,
    /// Abort the process (SIGABRT, no orderly shutdown) when ingest
    /// batch `n+1` arrives, *before* anything is journaled or applied —
    /// the deterministic crash point the kill-and-restart suite drives.
    /// `None` in production.
    pub crash_after_batches: Option<u64>,
}

/// Per-connection state: one [`IngestWriter`] per tenant, created
/// lazily on the first ingest — so a connection's batches carry one
/// stable watermark index per tenant, and
/// `POST …/ingest` can return "batches this writer has fully applied"
/// as its response.
#[derive(Debug, Default)]
pub struct ConnState {
    writers: HashMap<String, IngestWriter>,
}

/// The routing core. Shared across every worker thread via `Arc`.
#[derive(Debug)]
pub struct AnalysisService {
    registry: TenantRegistry,
    observer: Arc<Observer>,
    metrics: ServeMetrics,
    config: ServiceConfig,
    /// Ingest batches accepted service-wide (drives `crash_after_batches`).
    ingest_batches: AtomicU64,
}

impl AnalysisService {
    /// Builds a service over an empty registry. When `observer` is
    /// `None`, the process-global observer is used if installed,
    /// otherwise a private one — `/metrics` always has a registry to
    /// render.
    pub fn new(config: ServiceConfig, observer: Option<Arc<Observer>>) -> AnalysisService {
        let observer = observer
            .or_else(crowdtz_obs::global)
            .unwrap_or_else(Observer::from_env);
        AnalysisService {
            registry: TenantRegistry::new(),
            metrics: ServeMetrics::new(&observer),
            observer,
            config,
            ingest_batches: AtomicU64::new(0),
        }
    }

    /// The tenant registry (for embeddings that pre-create tenants).
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// The observer every tenant engine reports into.
    pub fn observer(&self) -> &Arc<Observer> {
        &self.observer
    }

    /// The `serve.*` metric handles (the connection loop records into
    /// these).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Routes one request. Returns the response and the route label for
    /// metrics. Never panics on malformed input — every parse failure is
    /// a 4xx.
    pub fn handle(&self, request: &Request, conn: &mut ConnState) -> (Response, &'static str) {
        let segments = request.segments();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET" | "HEAD", ["healthz"]) => (Response::text(200, "ok\n"), "healthz"),
            ("GET" | "HEAD", ["metrics"]) => (self.metrics_response(), "metrics"),
            ("GET" | "HEAD", ["v1", "tenants"]) => (self.list_tenants(), "tenants"),
            ("POST", ["v1", "tenants", name]) => (self.create_tenant(name, request), "create"),
            ("POST", ["v1", "tenants", name, "ingest"]) => {
                (self.ingest(name, request, conn), "ingest")
            }
            ("POST", ["v1", "tenants", name, "retract"]) => {
                (self.retract(name, request, conn), "retract")
            }
            ("GET" | "HEAD", ["v1", "tenants", name, "snapshot"]) => {
                (self.snapshot(name, request), "snapshot")
            }
            ("GET" | "HEAD", ["v1", "tenants", name, "drift"]) => {
                (self.drift(name, request), "drift")
            }
            // Known paths with the wrong method get 405 + Allow.
            (_, ["healthz"] | ["metrics"] | ["v1", "tenants"]) => {
                (method_not_allowed("GET"), "other")
            }
            (_, ["v1", "tenants", _]) => (method_not_allowed("POST"), "other"),
            (_, ["v1", "tenants", _, "ingest" | "retract"]) => {
                (method_not_allowed("POST"), "other")
            }
            (_, ["v1", "tenants", _, "snapshot" | "drift"]) => (method_not_allowed("GET"), "other"),
            _ => (
                Response::error(404, &format!("no route for {}", request.path)),
                "other",
            ),
        }
    }

    fn metrics_response(&self) -> Response {
        let text = self.observer.snapshot().to_prometheus();
        Response {
            status: 200,
            headers: Vec::new(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: text.into_bytes(),
            close: false,
        }
    }

    fn list_tenants(&self) -> Response {
        let tenants: Vec<serde_json::Value> = self
            .registry
            .names()
            .into_iter()
            .filter_map(|name| self.registry.get(&name))
            .map(|tenant| {
                serde_json::json!({
                    "forum": tenant.name(),
                    "grid": tenant.config().grid.zones(),
                    "durable": tenant.is_durable(),
                    "users": tenant.engine().users_tracked(),
                    "posts": tenant.engine().posts_ingested(),
                })
            })
            .collect();
        Response::json(200, &serde_json::json!({ "tenants": tenants }))
    }

    fn create_tenant(&self, name: &str, request: &Request) -> Response {
        let spec = if request.body.is_empty() {
            serde_json::Value::object(Vec::new())
        } else {
            match serde_json::from_slice::<serde_json::Value>(&request.body) {
                Ok(value @ serde_json::Value::Object(_)) => value,
                Ok(other) => {
                    return Response::error(
                        400,
                        &format!("config must be a JSON object, got {}", other.kind()),
                    )
                }
                Err(e) => return Response::error(400, &format!("body is not JSON: {e}")),
            }
        };
        let mut config = TenantConfig::default();
        match parse_grid(&spec) {
            Ok(Some(grid)) => config.grid = grid,
            Ok(None) => {}
            Err(message) => return Response::error(400, &message),
        }
        for (field, slot) in [
            ("shards", &mut config.shards),
            ("threads", &mut config.threads),
            ("min_posts", &mut config.min_posts),
        ] {
            match parse_usize(&spec, field) {
                Ok(Some(v)) => *slot = v,
                Ok(None) => {}
                Err(message) => return Response::error(400, &message),
            }
        }
        match parse_window(&spec) {
            Ok(window) => config.window = window,
            Err(message) => return Response::error(400, &message),
        }
        match field_of(&spec, "durable") {
            None => {}
            Some(serde_json::Value::Bool(false)) => {}
            Some(serde_json::Value::Bool(true)) => match &self.config.durable_root {
                None => {
                    return Response::error(
                        503,
                        "durable tenants are disabled: the server has no --durable-root",
                    )
                }
                Some(root) => config.durable_dir = Some(root.join(name)),
            },
            Some(other) => {
                return Response::error(
                    400,
                    &format!("durable must be a bool, got {}", other.kind()),
                )
            }
        }
        match self
            .registry
            .create(name, config, Some(Arc::clone(&self.observer)))
        {
            Ok(tenant) => Response::json(
                201,
                &serde_json::json!({
                    "forum": tenant.name(),
                    "grid": tenant.config().grid.zones(),
                    "shards": tenant.engine().shard_count(),
                    "min_posts": tenant.config().min_posts,
                    "durable": tenant.is_durable(),
                    "windowed": tenant.window().is_some(),
                }),
            ),
            Err(TenantError::InvalidName { name }) => {
                Response::error(400, &format!("invalid tenant name {name:?}"))
            }
            Err(TenantError::AlreadyExists { name }) => {
                Response::error(409, &format!("tenant {name:?} already exists"))
            }
            Err(TenantError::Core(e)) => {
                Response::error(500, &format!("tenant engine failed to open: {e}"))
            }
        }
    }

    fn ingest(&self, name: &str, request: &Request, conn: &mut ConnState) -> Response {
        let Some(tenant) = self.registry.get(name) else {
            return Response::error(404, &format!("unknown tenant {name:?}"));
        };
        let deltas = match parse_deltas(&request.body) {
            Ok(deltas) => deltas,
            Err(message) => return Response::error(400, &message),
        };
        // The deterministic crash point: batch n+1 aborts before the WAL
        // or any shard sees it, so exactly n batches are recoverable and
        // an unacknowledged batch is never half-durable.
        if let Some(limit) = self.config.crash_after_batches {
            if self.ingest_batches.fetch_add(1, Ordering::SeqCst) >= limit {
                eprintln!("crowdtz-serve: --crash-after {limit} reached, aborting");
                std::process::abort();
            }
        }
        let writer = conn
            .writers
            .entry(name.to_string())
            .or_insert_with(|| tenant.engine().writer());
        let flat = flatten_deltas(&deltas);
        let result = match tenant.window() {
            // Windowed tenants ingest-and-track in one call, so every
            // post is queued for expiry the moment it is acknowledged.
            Some(window) => window.ingest_posts(writer, &flat),
            None => writer.ingest_posts_ref(&flat),
        };
        if let Err(e) = result {
            // Only the durable append can fail; the in-memory engine is
            // untouched, but this connection's journal is now suspect.
            return Response::error(500, &format!("write-ahead append failed: {e}")).closing();
        }
        Response::json(
            200,
            &serde_json::json!({
                "forum": name,
                "watermark": writer.batches_applied(),
                "users": deltas.len(),
                "posts": flat.len(),
            }),
        )
    }

    /// `POST …/retract`: the signed inverse of ingest, same body shape.
    /// On a windowed tenant the posts are also removed from the expiry
    /// queue so they cannot be retracted a second time.
    fn retract(&self, name: &str, request: &Request, conn: &mut ConnState) -> Response {
        let Some(tenant) = self.registry.get(name) else {
            return Response::error(404, &format!("unknown tenant {name:?}"));
        };
        let deltas = match parse_deltas(&request.body) {
            Ok(deltas) => deltas,
            Err(message) => return Response::error(400, &message),
        };
        let writer = conn
            .writers
            .entry(name.to_string())
            .or_insert_with(|| tenant.engine().writer());
        let flat = flatten_deltas(&deltas);
        // On a windowed tenant only still-tracked posts are released
        // (the count comes back); unwindowed retraction submits all.
        let retracted = match tenant.window() {
            Some(window) => window.retract_posts(writer, &flat),
            None => writer.retract_posts_ref(&flat).map(|()| flat.len()),
        };
        let retracted = match retracted {
            Ok(n) => n,
            Err(e) => {
                return Response::error(500, &format!("write-ahead append failed: {e}")).closing()
            }
        };
        Response::json(
            200,
            &serde_json::json!({
                "forum": name,
                "watermark": writer.batches_applied(),
                "users": deltas.len(),
                "posts": retracted,
            }),
        )
    }

    /// Resolves the report to serve: the newest published cell read
    /// (wait-free), or a fresh `publish` cut when `?publish=1`. On a
    /// windowed tenant the cut goes through the window front, so expiry
    /// and the drift trajectory advance with it.
    fn published(
        &self,
        tenant: &Tenant,
        request: &Request,
    ) -> Result<Arc<PublishedReport>, Response> {
        let publish = matches!(request.query_param("publish"), Some("1" | "true"));
        if publish {
            let coverage = match request.query_param("coverage") {
                None => 1.0,
                Some(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| Response::error(400, &format!("unparseable coverage {raw:?}")))?,
            };
            let cut = match tenant.window() {
                Some(window) => window.publish_with_coverage(coverage),
                None => tenant.engine().publish_with_coverage(coverage),
            };
            cut.map_err(|e| match e {
                CoreError::EmptyCrowd => {
                    Response::error(409, "no users survive the filters yet; ingest more")
                }
                CoreError::InvalidCoverage { coverage } => {
                    Response::error(400, &format!("coverage {coverage} outside (0, 1]"))
                }
                other => Response::error(500, &format!("publish failed: {other}")),
            })
        } else {
            tenant.engine().snapshot().ok_or_else(|| {
                Response::error(
                    404,
                    "nothing published yet; POST more batches or GET ?publish=1",
                )
            })
        }
    }

    fn snapshot(&self, name: &str, request: &Request) -> Response {
        let Some(tenant) = self.registry.get(name) else {
            return Response::error(404, &format!("unknown tenant {name:?}"));
        };
        let published = match self.published(&tenant, request) {
            Ok(published) => published,
            Err(response) => return response,
        };
        let body = match serde_json::to_vec(published.report()) {
            Ok(body) => body,
            Err(e) => return Response::error(500, &format!("serialize failed: {e}")),
        };
        let watermarks = published
            .watermarks()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        Response {
            status: 200,
            headers: Vec::new(),
            content_type: "application/json",
            body,
            close: false,
        }
        .with_header("X-Crowdtz-Epoch", published.epoch().to_string())
        .with_header("X-Crowdtz-Watermarks", watermarks)
        .with_header("X-Crowdtz-Posts", published.posts_ingested().to_string())
    }

    fn drift(&self, name: &str, request: &Request) -> Response {
        let Some(tenant) = self.registry.get(name) else {
            return Response::error(404, &format!("unknown tenant {name:?}"));
        };
        if matches!(request.query_param("trajectory"), Some("1" | "true")) {
            return self.drift_trajectory(&tenant, request);
        }
        let top = match request.query_param("top") {
            None => None,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => Some(n),
                Err(_) => return Response::error(400, &format!("unparseable top {raw:?}")),
            },
        };
        let nonzero = matches!(request.query_param("nonzero"), Some("1" | "true"));
        let published = match self.published(&tenant, request) {
            Ok(published) => published,
            Err(response) => return response,
        };
        let histogram = published.report().histogram();
        let grid = histogram.grid();
        let counts = histogram.counts();
        let fractions = histogram.fractions();
        let mut zones: Vec<(i32, f64, f64)> = (0..histogram.bins())
            .map(|i| (grid.minutes_of(i), counts[i], fractions[i]))
            .filter(|&(_, count, _)| !nonzero || count > 0.0)
            .collect();
        if let Some(top) = top {
            // Largest crowds first, offset as the deterministic tie-break.
            zones.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            zones.truncate(top);
        }
        let rows: Vec<serde_json::Value> = zones
            .into_iter()
            .map(|(offset_minutes, count, fraction)| {
                serde_json::json!({
                    "offset_minutes": offset_minutes,
                    "count": count,
                    "fraction": fraction,
                })
            })
            .collect();
        Response::json(
            200,
            &serde_json::json!({
                "forum": name,
                "epoch": published.epoch(),
                "grid": grid.zones(),
                "users": histogram.users(),
                "zones": rows,
            }),
        )
    }

    /// `GET …/drift?trajectory=1`: the longitudinal drift trajectory —
    /// one row per publish, with the L1 shift, the change-point flag,
    /// and the dominant zone. `?publish=1` cuts a fresh point first.
    fn drift_trajectory(&self, tenant: &Tenant, request: &Request) -> Response {
        let Some(window) = tenant.window() else {
            return Response::error(
                400,
                &format!(
                    "tenant {:?} has no window config; create it with a \"window\" object",
                    tenant.name()
                ),
            );
        };
        if matches!(request.query_param("publish"), Some("1" | "true")) {
            if let Err(response) = self.published(tenant, request) {
                return response;
            }
        }
        let grid = tenant.config().grid;
        let points = window.trajectory();
        let changepoints = points.iter().filter(|p| p.is_changepoint()).count();
        let rows: Vec<serde_json::Value> = points
            .iter()
            .map(|p| {
                let (dominant_offset, dominant_fraction) = match p.dominant() {
                    Some((zone, fraction)) => (
                        serde_json::json!(grid.minutes_of(zone)),
                        serde_json::json!(fraction),
                    ),
                    None => (serde_json::Value::Null, serde_json::Value::Null),
                };
                serde_json::json!({
                    "epoch": p.epoch(),
                    "bucket": p.bucket(),
                    "shift": p.shift(),
                    "changepoint": p.is_changepoint(),
                    "dominant_offset_minutes": dominant_offset,
                    "dominant_fraction": dominant_fraction,
                })
            })
            .collect();
        Response::json(
            200,
            &serde_json::json!({
                "forum": tenant.name(),
                "grid": grid.zones(),
                "bucket_secs": window.config().bucket_secs,
                "window_buckets": window.config().window_buckets,
                "changepoints": changepoints,
                "trajectory": rows,
            }),
        )
    }
}

fn method_not_allowed(allow: &str) -> Response {
    Response::error(405, &format!("method not allowed; try {allow}"))
        .with_header("Allow", allow.to_string())
}

/// `spec[name]` when `spec` is an object with that field.
fn field_of<'v>(spec: &'v serde_json::Value, name: &str) -> Option<&'v serde_json::Value> {
    match spec {
        serde_json::Value::Object(fields) => fields
            .iter()
            .find(|(field, _)| field == name)
            .map(|(_, value)| value),
        _ => None,
    }
}

fn parse_usize(spec: &serde_json::Value, field: &str) -> Result<Option<usize>, String> {
    match field_of(spec, field) {
        None => Ok(None),
        Some(value) => match value.as_u64() {
            Some(n) => usize::try_from(n)
                .map(Some)
                .map_err(|_| format!("{field} {n} is out of range")),
            None => Err(format!(
                "{field} must be a non-negative integer, got {}",
                value.kind()
            )),
        },
    }
}

/// Flattens grouped deltas into the `(user, timestamp)` pairs the
/// borrowed ingest/retract variants take.
fn flatten_deltas(deltas: &[(String, Vec<Timestamp>)]) -> Vec<(&str, Timestamp)> {
    deltas
        .iter()
        .flat_map(|(user, posts)| posts.iter().map(move |ts| (user.as_str(), *ts)))
        .collect()
}

/// `window` is an optional object: `{"bucket_secs": n, "window_buckets":
/// n, "drift_threshold": x, "drift_history": n}`, each field defaulting
/// to [`WindowConfig::default`].
fn parse_window(spec: &serde_json::Value) -> Result<Option<WindowConfig>, String> {
    let Some(value) = field_of(spec, "window") else {
        return Ok(None);
    };
    if !matches!(value, serde_json::Value::Object(_)) {
        return Err(format!("window must be an object, got {}", value.kind()));
    }
    let mut config = WindowConfig::default();
    if let Some(raw) = field_of(value, "bucket_secs") {
        config.bucket_secs = raw
            .as_i64()
            .filter(|&n| n > 0)
            .ok_or_else(|| "window.bucket_secs must be a positive integer".to_string())?;
    }
    if let Some(raw) = field_of(value, "window_buckets") {
        let n = raw
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| "window.window_buckets must be a positive integer".to_string())?;
        config.window_buckets =
            usize::try_from(n).map_err(|_| format!("window.window_buckets {n} is out of range"))?;
    }
    if let Some(raw) = field_of(value, "drift_threshold") {
        config.drift_threshold = raw
            .as_f64()
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or_else(|| "window.drift_threshold must be a non-negative number".to_string())?;
    }
    if let Some(raw) = field_of(value, "drift_history") {
        let n = raw
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| "window.drift_history must be a positive integer".to_string())?;
        config.drift_history =
            usize::try_from(n).map_err(|_| format!("window.drift_history {n} is out of range"))?;
    }
    Ok(Some(config))
}

/// `grid` accepts the zone count (24/48/96) or the `CROWDTZ_GRID`-style
/// names.
fn parse_grid(spec: &serde_json::Value) -> Result<Option<ZoneGrid>, String> {
    let Some(value) = field_of(spec, "grid") else {
        return Ok(None);
    };
    if let Some(zones) = value.as_u64() {
        return ZoneGrid::from_zones(zones as usize)
            .map(Some)
            .ok_or_else(|| format!("grid must be 24, 48 or 96, got {zones}"));
    }
    match value.as_str() {
        Some("hourly" | "24") => Ok(Some(ZoneGrid::Hourly)),
        Some("half" | "half-hour" | "48") => Ok(Some(ZoneGrid::HalfHour)),
        Some("quarter" | "quarter-hour" | "96") => Ok(Some(ZoneGrid::QuarterHour)),
        Some(other) => Err(format!("unknown grid {other:?}")),
        None => Err(format!(
            "grid must be a number or string, got {}",
            value.kind()
        )),
    }
}

/// Parses an ingest body: `{"deltas": [{"user": "...", "posts":
/// [secs, …]}, …]}`, timestamps in epoch seconds.
fn parse_deltas(body: &[u8]) -> Result<Vec<(String, Vec<Timestamp>)>, String> {
    let value: serde_json::Value =
        serde_json::from_slice(body).map_err(|e| format!("body is not JSON: {e}"))?;
    let Some(entries) = field_of(&value, "deltas") else {
        return Err("missing field \"deltas\"".into());
    };
    let serde_json::Value::Array(entries) = entries else {
        return Err(format!("deltas must be an array, got {}", entries.kind()));
    };
    let mut deltas = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let user = field_of(entry, "user")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| format!("deltas[{i}].user must be a string"))?;
        if user.is_empty() {
            return Err(format!("deltas[{i}].user must be non-empty"));
        }
        let posts = match field_of(entry, "posts") {
            Some(serde_json::Value::Array(posts)) => posts,
            Some(other) => {
                return Err(format!(
                    "deltas[{i}].posts must be an array, got {}",
                    other.kind()
                ))
            }
            None => return Err(format!("deltas[{i}].posts must be an array")),
        };
        let mut timestamps = Vec::with_capacity(posts.len());
        for (j, post) in posts.iter().enumerate() {
            let secs = post.as_i64().ok_or_else(|| {
                format!("deltas[{i}].posts[{j}] must be an integer (epoch seconds)")
            })?;
            timestamps.push(Timestamp::from_secs(secs));
        }
        deltas.push((user.to_string(), timestamps));
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (
                p.to_string(),
                q.split('&')
                    .map(|pair| match pair.split_once('=') {
                        Some((k, v)) => (k.to_string(), v.to_string()),
                        None => (pair.to_string(), String::new()),
                    })
                    .collect(),
            ),
            None => (target.to_string(), Vec::new()),
        };
        Request {
            method: method.to_string(),
            path,
            query,
            headers: Vec::new(),
            body: body.to_vec(),
            close: false,
            wire_bytes: body.len(),
        }
    }

    fn service() -> AnalysisService {
        AnalysisService::new(
            ServiceConfig::default(),
            Some(Observer::with_level(crowdtz_obs::LogLevel::Off)),
        )
    }

    #[test]
    fn create_ingest_publish_snapshot_round_trip() {
        let service = service();
        let mut conn = ConnState::default();
        let (created, route) = service.handle(
            &request(
                "POST",
                "/v1/tenants/alpha",
                br#"{"min_posts": 1, "threads": 1}"#,
            ),
            &mut conn,
        );
        assert_eq!((created.status, route), (201, "create"));

        let mut deltas = String::from(r#"{"deltas":["#);
        for day in 0..10 {
            if day > 0 {
                deltas.push(',');
            }
            deltas.push_str(&format!(
                r#"{{"user":"u1","posts":[{}]}}"#,
                day * 86_400 + 20 * 3_600
            ));
        }
        deltas.push_str("]}");
        let (ingested, route) = service.handle(
            &request("POST", "/v1/tenants/alpha/ingest", deltas.as_bytes()),
            &mut conn,
        );
        assert_eq!((ingested.status, route), (200, "ingest"));
        let body: serde_json::Value = serde_json::from_slice(&ingested.body).unwrap();
        assert_eq!(body.field("watermark").unwrap().as_u64(), Some(1));
        assert_eq!(body.field("posts").unwrap().as_u64(), Some(10));

        // Nothing published yet → 404; publish=1 cuts a report.
        let (miss, _) = service.handle(
            &request("GET", "/v1/tenants/alpha/snapshot", b""),
            &mut conn,
        );
        assert_eq!(miss.status, 404);
        let (hit, _) = service.handle(
            &request("GET", "/v1/tenants/alpha/snapshot?publish=1", b""),
            &mut conn,
        );
        assert_eq!(hit.status, 200);
        assert!(hit
            .headers
            .iter()
            .any(|(n, v)| n == "X-Crowdtz-Epoch" && v == "1"));
        // The published cell now serves the same bytes wait-free.
        let (cached, _) = service.handle(
            &request("GET", "/v1/tenants/alpha/snapshot", b""),
            &mut conn,
        );
        assert_eq!(cached.status, 200);
        assert_eq!(cached.body, hit.body);

        let (drift, _) = service.handle(
            &request("GET", "/v1/tenants/alpha/drift?nonzero=1", b""),
            &mut conn,
        );
        assert_eq!(drift.status, 200);
        let drift: serde_json::Value = serde_json::from_slice(&drift.body).unwrap();
        assert_eq!(drift.field("users").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn windowed_tenant_expires_old_posts_and_reports_the_trajectory() {
        let service = service();
        let mut conn = ConnState::default();
        let (created, route) = service.handle(
            &request(
                "POST",
                "/v1/tenants/w",
                br#"{"min_posts": 1, "threads": 1, "window": {"bucket_secs": 86400, "window_buckets": 2, "drift_threshold": 0.5, "drift_history": 2}}"#,
            ),
            &mut conn,
        );
        assert_eq!((created.status, route), (201, "create"));
        let created: serde_json::Value = serde_json::from_slice(&created.body).unwrap();
        assert_eq!(
            created.field("windowed").unwrap(),
            &serde_json::Value::Bool(true)
        );

        // Bucket 0: a night-owl user; publish point one.
        let (r, _) = service.handle(
            &request(
                "POST",
                "/v1/tenants/w/ingest",
                br#"{"deltas":[{"user":"old","posts":[72000]}]}"#,
            ),
            &mut conn,
        );
        assert_eq!(r.status, 200);
        let (r, _) = service.handle(
            &request("GET", "/v1/tenants/w/snapshot?publish=1", b""),
            &mut conn,
        );
        assert_eq!(r.status, 200);

        // Buckets 4 and 5: a morning user. Publishing now expires bucket
        // 0 (cutoff = 5 − 2 + 1 = 4), so only "new" survives — a full
        // composition shift, which the tracker must flag.
        let (r, _) = service.handle(
            &request(
                "POST",
                "/v1/tenants/w/ingest",
                br#"{"deltas":[{"user":"new","posts":[378000, 464400]}]}"#,
            ),
            &mut conn,
        );
        assert_eq!(r.status, 200);
        let (r, _) = service.handle(
            &request("GET", "/v1/tenants/w/snapshot?publish=1", b""),
            &mut conn,
        );
        assert_eq!(r.status, 200);
        let report: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let users = report.field("histogram").unwrap().field("users").unwrap();
        assert_eq!(users.as_u64(), Some(1), "expired user must be gone");

        // Explicit retraction over the same wire shape.
        let (r, route) = service.handle(
            &request(
                "POST",
                "/v1/tenants/w/retract",
                br#"{"deltas":[{"user":"new","posts":[464400]}]}"#,
            ),
            &mut conn,
        );
        assert_eq!((r.status, route), (200, "retract"));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body.field("posts").unwrap().as_u64(), Some(1));

        let (r, _) = service.handle(
            &request("GET", "/v1/tenants/w/drift?trajectory=1", b""),
            &mut conn,
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body.field("window_buckets").unwrap().as_u64(), Some(2));
        assert_eq!(body.field("changepoints").unwrap().as_u64(), Some(1));
        let serde_json::Value::Array(points) = body.field("trajectory").unwrap() else {
            panic!("trajectory must be an array");
        };
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[1].field("changepoint").unwrap(),
            &serde_json::Value::Bool(true),
            "full composition shift must be flagged"
        );
        assert!(points[1].field("shift").unwrap().as_f64().unwrap() > 0.5);
    }

    #[test]
    fn bad_inputs_map_to_4xx_not_panics() {
        let service = service();
        let mut conn = ConnState::default();
        service.handle(
            &request("POST", "/v1/tenants/alpha", br#"{"min_posts": 1}"#),
            &mut conn,
        );
        for (method, target, body, want) in [
            ("POST", "/v1/tenants/alpha", b"{}".as_slice(), 409),
            ("POST", "/v1/tenants/bad name!", b"{}", 400),
            ("POST", "/v1/tenants/beta", br#"{"grid": 25}"#, 400),
            ("POST", "/v1/tenants/beta", br#"{"shards": -4}"#, 400),
            ("POST", "/v1/tenants/beta", br#"{"durable": true}"#, 503),
            ("POST", "/v1/tenants/beta", br#"{"window": 5}"#, 400),
            (
                "POST",
                "/v1/tenants/beta",
                br#"{"window": {"bucket_secs": 0}}"#,
                400,
            ),
            (
                "POST",
                "/v1/tenants/beta",
                br#"{"window": {"drift_threshold": "hot"}}"#,
                400,
            ),
            ("POST", "/v1/tenants/ghost/ingest", br#"{"deltas":[]}"#, 404),
            (
                "POST",
                "/v1/tenants/ghost/retract",
                br#"{"deltas":[]}"#,
                404,
            ),
            ("POST", "/v1/tenants/alpha/retract", b"not json", 400),
            ("GET", "/v1/tenants/alpha/drift?trajectory=1", b"", 400),
            ("GET", "/v1/tenants/alpha/retract", b"", 405),
            ("POST", "/v1/tenants/alpha/ingest", b"not json", 400),
            ("POST", "/v1/tenants/alpha/ingest", br#"{"deltas": 7}"#, 400),
            (
                "POST",
                "/v1/tenants/alpha/ingest",
                br#"{"deltas":[{"user":"","posts":[1]}]}"#,
                400,
            ),
            (
                "POST",
                "/v1/tenants/alpha/ingest",
                br#"{"deltas":[{"user":"u","posts":["x"]}]}"#,
                400,
            ),
            ("GET", "/v1/tenants/ghost/snapshot", b"", 404),
            ("GET", "/v1/tenants/alpha/snapshot?publish=1", b"", 409),
            (
                "GET",
                "/v1/tenants/alpha/snapshot?publish=1&coverage=2",
                b"",
                400,
            ),
            ("GET", "/v1/tenants/alpha/drift?top=banana", b"", 400),
            ("DELETE", "/v1/tenants/alpha/snapshot", b"", 405),
            ("POST", "/healthz", b"", 405),
            ("GET", "/nope", b"", 404),
        ] {
            let (response, _) = service.handle(&request(method, target, body), &mut conn);
            assert_eq!(
                response.status,
                want,
                "{method} {target} with {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn metrics_route_renders_serve_series() {
        let service = service();
        let mut conn = ConnState::default();
        service.metrics().record("healthz", 200, 1_000);
        let (response, route) = service.handle(&request("GET", "/metrics", b""), &mut conn);
        assert_eq!((response.status, route), (200, "metrics"));
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("crowdtz_serve_requests_total 1"));
        assert!(text.contains("crowdtz_serve_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("crowdtz_serve_latency_ns_count{route=\"healthz\"} 1"));
    }
}
