//! `crowdtz-serve` — the multi-tenant HTTP analysis service.
//!
//! The monitoring scenario of *Time-Zone Geolocation of Crowds in the
//! Dark Web* (§V) run as a long-lived service: one
//! [`ConcurrentStreamingPipeline`](crowdtz_core::ConcurrentStreamingPipeline)
//! per forum tenant, fronted by a hand-rolled HTTP/1.1 server on
//! `std::net` with a fixed accept pool. No external dependencies beyond
//! the workspace's vendored set — the HTTP layer is ~400 lines of
//! strict parsing, which is the price of the vendored-only policy and
//! cheaper than auditing a framework.
//!
//! Layering, bottom-up:
//!
//! - [`http`]: framing only — request parsing with hard limits,
//!   response serialization, no routes, no engine types;
//! - [`service`]: routing — one [`Request`](http::Request) in, one
//!   [`Response`](http::Response) out, against a
//!   [`TenantRegistry`](crowdtz_core::TenantRegistry);
//! - [`server`]: sockets — the accept pool, per-connection loop,
//!   graceful shutdown with a final durable checkpoint;
//! - [`client`]: a minimal blocking client so tests and benches can
//!   drive the server black-box.
//!
//! The load-bearing invariant, inherited from every layer below: the
//! body of `GET /v1/tenants/{forum}/snapshot` is **byte-identical** to
//! `serde_json::to_vec` of the report an in-process engine publishes
//! after ingesting the same deltas — over any number of connections,
//! workers, tenants, and grids. `tests/serve_http.rs` pins exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod server;
pub mod service;

pub use client::{ClientResponse, HttpClient};
pub use http::{Request, Response, DEFAULT_MAX_BODY_BYTES};
pub use server::{resolve_addr, serve, serve_with, ServeConfig, ServerHandle};
pub use service::{AnalysisService, ConnState, ServeMetrics, ServiceConfig};
