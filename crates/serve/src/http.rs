//! A minimal, strict HTTP/1.1 framing layer over blocking sockets.
//!
//! Hand-rolled on purpose: the workspace vendors its few dependencies
//! and an HTTP server framework is exactly the kind of dependency the
//! vendored-only policy exists to avoid. The subset implemented here is
//! what the analysis service needs and nothing more:
//!
//! * `GET`/`POST`/`HEAD` with `Content-Length` bodies (no
//!   `Transfer-Encoding` — chunked requests get `501`);
//! * persistent connections with pipelining (the reader is buffered per
//!   connection, so bytes of request *n+1* that arrive with request *n*
//!   are simply the start of the next parse);
//! * hard limits everywhere a client controls an allocation: request
//!   line and header-line length, header count, and body size, each
//!   failing with the right 4xx before the oversized thing is read.
//!
//! Parsing is deliberately unforgiving — a malformed request closes the
//! connection after the error response, because a parser that "helpfully"
//! resynchronizes inside a byte stream it no longer understands is how
//! request-smuggling bugs happen.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or single header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 100;
/// Default cap on request bodies (the service can configure its own).
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Why a request could not be read. [`HttpError::response`] maps each
/// variant to the wire answer (or to silence, when the peer is gone).
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF at a request boundary — the peer finished and hung up.
    Closed,
    /// The connection died mid-request (EOF inside a line or body):
    /// nothing to answer, nobody listening.
    Truncated,
    /// The read timed out waiting for the rest of a request.
    Timeout,
    /// The request violates the grammar or a header is unusable.
    BadRequest(String),
    /// `Content-Length` exceeds the configured body cap.
    PayloadTooLarge(usize),
    /// A feature this server deliberately does not speak
    /// (`Transfer-Encoding`).
    NotImplemented(String),
    /// Transport failure.
    Io(io::Error),
}

impl HttpError {
    /// The response owed for this error, if the peer can still hear one.
    /// Every produced response closes the connection — see the module
    /// docs on resynchronization.
    pub fn response(&self) -> Option<Response> {
        match self {
            HttpError::Closed | HttpError::Truncated | HttpError::Io(_) => None,
            HttpError::Timeout => Some(Response::error(408, "request timed out").closing()),
            HttpError::BadRequest(msg) => Some(Response::error(400, msg).closing()),
            HttpError::PayloadTooLarge(limit) => Some(
                Response::error(413, &format!("body exceeds the {limit}-byte limit")).closing(),
            ),
            HttpError::NotImplemented(msg) => Some(Response::error(501, msg).closing()),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            io::ErrorKind::UnexpectedEof => HttpError::Truncated,
            _ => HttpError::Io(e),
        }
    }
}

/// One parsed request. Header names are lowercased; the target is split
/// into `path` and decoded `query` pairs.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// The path part of the target, before any `?`.
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// `(lowercased-name, value)` pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether this request asks to close the connection after the
    /// response (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
    /// Bytes consumed off the wire for this request (line + headers +
    /// body), for the `serve.bytes_in` counter.
    pub wire_bytes: usize,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Last value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Path split on `/` with empty segments dropped:
    /// `/v1/tenants/x/` → `["v1", "tenants", "x"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Reads one line (CRLF- or LF-terminated) without the terminator.
/// Refuses lines longer than [`MAX_LINE_BYTES`]; distinguishes EOF at a
/// boundary (`Ok(None)`) from EOF mid-line ([`HttpError::Truncated`]).
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Truncated)
            };
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(nl) => (&available[..=nl], true),
            None => (available, false),
        };
        if line.len() + chunk.len() > MAX_LINE_BYTES + 2 {
            return Err(HttpError::BadRequest(format!(
                "line exceeds {MAX_LINE_BYTES} bytes"
            )));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if done {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request head".into()))
}

/// Minimal percent-decoding for query components; `+` means space.
/// Malformed escapes pass through literally rather than failing the
/// request — query strings are advisory inputs, not framing.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let decoded = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match decoded {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads and parses one request off `reader`.
///
/// # Errors
///
/// Every [`HttpError`] variant; see [`HttpError::response`] for the
/// wire mapping. `max_body` bounds the accepted `Content-Length`.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Err(HttpError::Closed);
    };
    let mut wire_bytes = request_line.len() + 2;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version {version:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method token {method:?}"
        )));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(HttpError::Truncated);
        };
        wire_bytes += line.len() + 2;
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::NotImplemented(
            "Transfer-Encoding is not supported; send Content-Length".into(),
        ));
    }
    let content_length = match find("content-length") {
        None => 0,
        Some(raw) => raw
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("unparseable Content-Length {raw:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge(max_body));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    wire_bytes += content_length;

    let connection = find("connection").map(str::to_ascii_lowercase);
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => http10,
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
        close,
        wire_bytes,
    })
}

/// One response ready to serialize. Content-Length framing always; the
/// `close` flag additionally emits `Connection: close` and tells the
/// connection loop to stop.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond Content-Length/Content-Type/Connection.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Close the connection after writing.
    pub close: bool,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: &serde_json::Value) -> Response {
        let text = serde_json::to_string(body).unwrap_or_else(|_| "{}".into());
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: text.into_bytes(),
            close: false,
        }
    }

    /// A JSON `{"error": …}` response. Application-layer 4xx responses
    /// keep the connection open (the body was fully consumed, so framing
    /// is intact); parse-layer errors close via [`HttpError::response`],
    /// which marks its responses [`closing`](Response::closing).
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &serde_json::json!({ "error": message }))
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Marks the connection for closing after this response.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// Serializes onto `w`; returns bytes written. `head_only` elides
    /// the body (HEAD) while keeping the true Content-Length.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; callers treat them as "peer gone".
    pub fn write_to(&self, w: &mut impl Write, head_only: bool) -> io::Result<usize> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nContent-Type: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            self.content_type,
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        if self.close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        let mut written = head.len();
        w.write_all(head.as_bytes())?;
        if !head_only {
            w.write_all(&self.body)?;
            written += self.body.len();
        }
        w.flush()?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            b"POST /v1/tenants/alpha/ingest?publish=1&x=a%20b HTTP/1.1\r\n\
              Host: localhost\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.segments(), ["v1", "tenants", "alpha", "ingest"]);
        assert_eq!(req.query_param("publish"), Some("1"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.body, b"body");
        assert!(!req.close);
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let a = read_request(&mut reader, 1024).unwrap();
        let b = read_request(&mut reader, 1024).unwrap();
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/metrics");
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn framing_violations_are_the_right_errors() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(parse(b"GET /x"), Err(HttpError::Truncated)));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        ));
        assert!(matches!(
            parse(b"nonsense\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/9.9\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::NotImplemented(_))
        ));
        let oversized: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(oversized), 10),
            Err(HttpError::PayloadTooLarge(10))
        ));
    }

    #[test]
    fn connection_close_semantics() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(close.close);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(old.close, "HTTP/1.0 defaults to close");
        let kept = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!kept.close);
    }

    #[test]
    fn responses_serialize_with_length_and_reason() {
        let mut out = Vec::new();
        let n = Response::json(200, &serde_json::json!({"ok": true}))
            .with_header("X-Crowdtz-Epoch", "7".into())
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Crowdtz-Epoch: 7\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        assert_eq!(n, text.len());
    }
}
