//! The TCP front: a fixed accept pool of worker threads.
//!
//! # Threading model
//!
//! One `TcpListener`, cloned into `workers` OS threads that each loop on
//! `accept()` — the kernel load-balances connections across blocked
//! acceptors, so there is no dispatcher thread and no cross-thread
//! hand-off of sockets. Each worker owns the connections it accepted for
//! their whole lifetime and runs the read → route → write loop inline.
//! This is deliberately *not* an async reactor: the engine underneath is
//! lock-per-shard with wait-free snapshot reads, so handler latency is
//! dominated by actual analysis work, and a thread per in-flight
//! connection (bounded by the pool) is the simplest model that cannot
//! starve.
//!
//! # Interaction with the engine's gate
//!
//! Ingest handlers hold the engine's read gate only inside
//! `ingest_deltas`; snapshot handlers read the published cell without
//! any lock. A slow `publish` (write gate) therefore stalls concurrent
//! *ingest* batches briefly but never a plain `GET …/snapshot` — the
//! service stays readable under its own re-analysis.
//!
//! # Shutdown
//!
//! `ServerHandle::shutdown` flips a flag, then connects one throwaway
//! socket per worker to wake every blocked `accept()` (no signals, no
//! platform APIs). Workers finish the request they are writing, close,
//! and join; finally every durable tenant is checkpointed via
//! [`TenantRegistry::checkpoint_all`](crowdtz_core::TenantRegistry::checkpoint_all)
//! so a restart warm-loads from a compact snapshot instead of replaying
//! the whole delta log.

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crowdtz_core::CoreError;
use crowdtz_obs::Observer;

use crate::http::{read_request, Response, DEFAULT_MAX_BODY_BYTES};
use crate::service::{AnalysisService, ConnState, ServiceConfig};

/// Socket-level server configuration wrapping a [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Accept-pool size (clamped to at least 1).
    pub workers: usize,
    /// Per-request body cap in bytes.
    pub max_body_bytes: usize,
    /// Read timeout per request; an idle keep-alive connection is closed
    /// with `408` when it expires. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// The routing layer's configuration.
    pub service: ServiceConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: Some(Duration::from_secs(30)),
            service: ServiceConfig::default(),
        }
    }
}

/// A bound, running server. Dropping the handle does *not* stop the
/// workers — call [`shutdown`](ServerHandle::shutdown).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<AnalysisService>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing service, for in-process inspection in tests.
    pub fn service(&self) -> &Arc<AnalysisService> {
        &self.service
    }

    /// Stops accepting, drains the workers, and checkpoints every
    /// durable tenant. Returns the number of tenants checkpointed.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] when a final checkpoint cannot be written;
    /// the workers are already joined by then.
    pub fn shutdown(mut self) -> Result<usize, CoreError> {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            // Wake one blocked accept() per worker; errors mean the
            // listener is already gone, which is what we want anyway.
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.registry().checkpoint_all()
    }

    /// Blocks until every worker exits (i.e. until another thread calls
    /// nothing — workers run until `shutdown`; this is for binaries that
    /// serve forever).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `config.addr` and starts the accept pool.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(config: ServeConfig, observer: Option<Arc<Observer>>) -> io::Result<ServerHandle> {
    let service = Arc::new(AnalysisService::new(config.service.clone(), observer));
    serve_with(config, service)
}

/// Starts the accept pool over an existing service (tests pre-create
/// tenants through [`AnalysisService::registry`]).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_with(config: ServeConfig, service: Arc<AnalysisService>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);
    let handles = (0..workers)
        .map(|i| {
            let listener = listener.try_clone()?;
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let max_body = config.max_body_bytes;
            let read_timeout = config.read_timeout;
            Ok(std::thread::Builder::new()
                .name(format!("crowdtz-serve-{i}"))
                .spawn(move || accept_loop(&listener, &service, &stop, max_body, read_timeout))
                .expect("spawn accept worker"))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(ServerHandle {
        addr,
        service,
        stop,
        workers: handles,
    })
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<AnalysisService>,
    stop: &AtomicBool,
    max_body: usize,
    read_timeout: Option<Duration>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        service.metrics().conn_opened();
        // A panicking handler must not take the worker thread (and its
        // share of the accept pool) down with it: count it, close the
        // connection, keep serving. The malformed-input suite asserts
        // the counter stays at zero.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            connection_loop(stream, service, stop, max_body, read_timeout);
        }));
        if outcome.is_err() {
            service.metrics().panics.inc();
        }
        service.metrics().conn_closed();
    }
}

/// How often an idle connection re-checks the shutdown flag. Bounds
/// shutdown latency without waking anything when traffic is flowing.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serves one connection until close, error, timeout, or shutdown.
///
/// Between requests the socket timeout is dropped to [`IDLE_POLL`] and
/// the loop waits on `fill_buf` — which buffers without consuming, so
/// polling costs nothing in framing — re-checking the stop flag each
/// tick. Once a request's first byte arrives the full `read_timeout`
/// applies to the rest of it.
fn connection_loop(
    stream: TcpStream,
    service: &Arc<AnalysisService>,
    stop: &AtomicBool,
    max_body: usize,
    read_timeout: Option<Duration>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut conn = ConnState::default();
    loop {
        // Idle phase: poll for the next request's first byte.
        if reader.get_ref().set_read_timeout(Some(IDLE_POLL)).is_err() {
            return;
        }
        let deadline = read_timeout.map(|t| Instant::now() + t);
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF at a request boundary
                Ok(_) => break,   // request bytes are waiting
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        let response = Response::error(408, "idle timeout").closing();
                        service.metrics().record("other", response.status, 0);
                        send(service, &mut writer, &response, false);
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        // Request phase: the configured timeout covers the whole read.
        if reader.get_ref().set_read_timeout(read_timeout).is_err() {
            return;
        }
        let request = match read_request(&mut reader, max_body) {
            Ok(request) => request,
            Err(error) => {
                if let Some(response) = error.response() {
                    service.metrics().record("other", response.status, 0);
                    send(service, &mut writer, &response, false);
                }
                return;
            }
        };
        service.metrics().bytes_in.add(request.wire_bytes as u64);
        let head_only = request.method == "HEAD";
        let started = Instant::now();
        let (mut response, route) = service.handle(&request, &mut conn);
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        service.metrics().record(route, response.status, elapsed);
        if request.close || stop.load(Ordering::SeqCst) {
            response = response.closing();
        }
        let close = response.close;
        if !send(service, &mut writer, &response, head_only) || close {
            return;
        }
    }
}

/// Writes a response, counting bytes; `false` means the peer is gone.
fn send(
    service: &Arc<AnalysisService>,
    writer: &mut TcpStream,
    response: &Response,
    head_only: bool,
) -> bool {
    match response.write_to(writer, head_only) {
        Ok(n) => {
            service.metrics().bytes_out.add(n as u64);
            true
        }
        Err(_) => false,
    }
}

/// Resolves a human-entered address like `127.0.0.1:0` or `:8080`.
///
/// # Errors
///
/// `InvalidInput` when nothing resolves.
pub fn resolve_addr(raw: &str) -> io::Result<SocketAddr> {
    let candidate = if raw.starts_with(':') {
        format!("127.0.0.1{raw}")
    } else {
        raw.to_string()
    };
    candidate
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad address {raw:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crowdtz_obs::LogLevel;

    fn quiet() -> Option<Arc<Observer>> {
        Some(Observer::with_level(LogLevel::Off))
    }

    #[test]
    fn serves_health_and_404_over_real_sockets() {
        let handle = serve(ServeConfig::default(), quiet()).unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let ok = client.get("/healthz").unwrap();
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"ok\n");
        // Keep-alive: the same connection serves the next request.
        let miss = client.get("/no/such/route").unwrap();
        assert_eq!(miss.status, 404);
        assert_eq!(handle.shutdown().unwrap(), 0);
    }

    #[test]
    fn shutdown_unblocks_every_worker() {
        let config = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        };
        let handle = serve(config, quiet()).unwrap();
        // No traffic at all: every worker is parked in accept().
        assert_eq!(handle.shutdown().unwrap(), 0);
    }

    #[test]
    fn head_requests_get_headers_without_bodies() {
        let handle = serve(ServeConfig::default(), quiet()).unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let head = client.request("HEAD", "/healthz", None).unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.header("content-length"), Some("3"));
        assert!(head.body.is_empty());
        // Framing survives: the next request still parses.
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        handle.shutdown().unwrap();
    }
}
