//! Kill-and-restart durability for the real `crowdtz-serve` binary
//! (ISSUE 9, satellite): SIGABRT the process mid-ingest via
//! `--crash-after`, restart over the same `--durable-root`, and the
//! warm-recovered tenant serves byte-identical analysis.
//!
//! This is the only suite that exercises the *process* rather than an
//! in-process server: it spawns `CARGO_BIN_EXE_crowdtz-serve`, scrapes
//! the flushed `listening on` line for the ephemeral port, and speaks
//! plain HTTP to it. The crash point is deterministic — batch `N+1`
//! aborts before the write-ahead log or any shard sees it — so exactly
//! the acknowledged prefix survives, and a monitor-style retry of the
//! unacknowledged batch lands exactly once.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use crowdtz_core::{ConcurrentStreamingPipeline, GeolocationPipeline};
use crowdtz_serve::HttpClient;
use crowdtz_time::Timestamp;
use serde_json::json;

const USERS: usize = 10;
const POSTS_PER_USER: i64 = 12;
const USERS_PER_BATCH: usize = 2;
const MIN_POSTS: usize = 3;
/// Acknowledged prefix: requests 1..=3 succeed, request 4 aborts.
const CRASH_AFTER: u64 = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("crowdtz-kill-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic placeable crowd, chunked into ingest batches.
fn batches() -> Vec<Vec<(String, Vec<Timestamp>)>> {
    let users: Vec<(String, Vec<Timestamp>)> = (0..USERS as i64)
        .map(|u| {
            let posts = (0..POSTS_PER_USER)
                .map(|p| {
                    let hour = (20 + (u * 5 + p * 3) % 4 - 2).rem_euclid(24);
                    Timestamp::from_secs(p * 86_400 + hour * 3_600 + u)
                })
                .collect();
            (format!("user{u:02}"), posts)
        })
        .collect();
    users.chunks(USERS_PER_BATCH).map(<[_]>::to_vec).collect()
}

fn batch_body(batch: &[(String, Vec<Timestamp>)]) -> serde_json::Value {
    let entries: Vec<serde_json::Value> = batch
        .iter()
        .map(|(user, posts)| {
            let secs: Vec<i64> = posts.iter().map(|t| t.as_secs()).collect();
            json!({"user": user, "posts": secs})
        })
        .collect();
    json!({ "deltas": entries })
}

/// The reference bytes for a crowd fed batches `0..upto`.
fn reference(upto: usize) -> Vec<u8> {
    let engine =
        ConcurrentStreamingPipeline::new(GeolocationPipeline::default().min_posts(MIN_POSTS));
    let writer = engine.writer();
    for batch in &batches()[..upto] {
        for (user, posts) in batch {
            writer.ingest(user, posts).expect("reference ingest");
        }
    }
    serde_json::to_vec(engine.publish().expect("reference publish").report())
        .expect("serialize reference")
}

/// Spawns the real binary and scrapes its flushed listening line.
fn spawn_server(root: &Path, crash_after: Option<u64>) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crowdtz-serve"));
    cmd.arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .arg("--durable-root")
        .arg(root)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(n) = crash_after {
        cmd.arg("--crash-after").arg(n.to_string());
    }
    let mut child = cmd.spawn().expect("spawn crowdtz-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("crowdtz-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .parse()
        .expect("listening address");
    (child, addr)
}

fn create_tenant(client: &mut HttpClient) {
    let created = client
        .post_json(
            "/v1/tenants/market",
            &json!({"grid": "hourly", "min_posts": MIN_POSTS, "durable": true}),
        )
        .expect("create tenant");
    assert_eq!(created.status, 201, "create durable tenant");
}

#[test]
fn sigabrt_mid_ingest_recovers_the_acknowledged_prefix_exactly() {
    let root = tmp_dir("abort");
    let all = batches();

    // Run 1: crash on the (CRASH_AFTER+1)-th ingest request.
    let (mut child, addr) = spawn_server(&root, Some(CRASH_AFTER));
    let mut client = HttpClient::connect(addr).expect("connect");
    create_tenant(&mut client);
    for (i, batch) in all.iter().take(CRASH_AFTER as usize).enumerate() {
        let reply = client
            .post_json("/v1/tenants/market/ingest", &batch_body(batch))
            .expect("acknowledged ingest");
        assert_eq!(reply.status, 200, "batch {i} must be acknowledged");
    }
    // The next batch trips the crash point: the process SIGABRTs before
    // journaling it, so this request gets no acknowledgement.
    let doomed = client.post_json(
        "/v1/tenants/market/ingest",
        &batch_body(&all[CRASH_AFTER as usize]),
    );
    assert!(doomed.is_err(), "the crashing batch must never be acked");
    let status = child.wait().expect("reap crashed server");
    assert!(!status.success(), "server must die, not exit cleanly");
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(status.signal(), Some(libc_sigabrt()), "died of SIGABRT");
    }

    // Run 2: restart over the same root. Re-creating the tenant warm-
    // recovers it from snapshot + log — no re-ingest — and it publishes
    // exactly the acknowledged prefix.
    let (mut child, addr) = spawn_server(&root, None);
    let mut client = HttpClient::connect(addr).expect("reconnect");
    create_tenant(&mut client);
    let recovered = client
        .get("/v1/tenants/market/snapshot?publish=1")
        .expect("publish after recovery");
    assert_eq!(recovered.status, 200);
    assert_eq!(
        recovered.body,
        reference(CRASH_AFTER as usize),
        "recovered snapshot must equal an uninterrupted run over the acknowledged prefix"
    );
    assert_eq!(
        recovered.header("x-crowdtz-posts"),
        Some(
            (CRASH_AFTER as usize * USERS_PER_BATCH * POSTS_PER_USER as usize)
                .to_string()
                .as_str()
        ),
        "only acknowledged posts survive the crash"
    );

    // A monitor retries the unacknowledged batch and sends the rest:
    // each lands exactly once, converging on the full-corpus bytes.
    for batch in &all[CRASH_AFTER as usize..] {
        let reply = client
            .post_json("/v1/tenants/market/ingest", &batch_body(batch))
            .expect("retry ingest");
        assert_eq!(reply.status, 200);
    }
    let full = client
        .get("/v1/tenants/market/snapshot?publish=1")
        .expect("publish full corpus");
    assert_eq!(full.status, 200);
    assert_eq!(
        full.body,
        reference(all.len()),
        "retried batches must not double-apply"
    );
    assert_eq!(
        full.header("x-crowdtz-posts"),
        Some((USERS * POSTS_PER_USER as usize).to_string().as_str()),
        "post count after retry matches the corpus exactly"
    );

    child.kill().expect("stop second server");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(root);
}

/// SIGABRT's number without linking libc: POSIX fixes it at 6.
#[cfg(unix)]
fn libc_sigabrt() -> i32 {
    6
}
