//! Adversarial-input suite for `crowdtz-serve` (ISSUE 9, satellite):
//! every malformed request the framing layer can meet must produce the
//! *right* 4xx/5xx (or silence when the peer is already gone), close the
//! connection exactly when framing is lost, and leave the server — and
//! every tenant's engine — fully serviceable.
//!
//! The suite talks raw bytes on purpose ([`HttpClient::send_raw`]):
//! nothing here could be produced by the well-behaved client methods.
//! Two invariants are re-asserted after every attack:
//!
//! * `GET /healthz` answers 200 from a fresh connection;
//! * `crowdtz_serve_panics_total 0` — the connection loop's
//!   `catch_unwind` backstop never fired.
//!
//! Runs clean under `CROWDTZ_LOG=debug` (CI does exactly that).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use crowdtz_core::{ConcurrentStreamingPipeline, GeolocationPipeline};
use crowdtz_serve::{serve, HttpClient, ServeConfig, ServerHandle};
use crowdtz_time::Timestamp;
use proptest::prelude::*;
use serde_json::json;

/// Small enough that the oversized-Content-Length case is cheap to
/// state, large enough for every legitimate body the suite sends.
const MAX_BODY: usize = 64 * 1024;

fn start() -> ServerHandle {
    let config = ServeConfig {
        workers: 2,
        max_body_bytes: MAX_BODY,
        read_timeout: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    };
    serve(config, None).expect("bind loopback")
}

/// The two post-attack invariants: serviceable, and zero caught panics.
fn assert_unharmed(handle: &ServerHandle) {
    let mut client = HttpClient::connect(handle.addr()).expect("fresh connection");
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "server must stay serviceable");
    let metrics = client.get("/metrics").expect("metrics");
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    assert!(
        text.contains("crowdtz_serve_panics_total 0"),
        "a handler panicked: {}",
        text.lines()
            .find(|l| l.contains("panics"))
            .unwrap_or("panics series missing")
    );
}

/// A deterministic placeable workload: 8 users, 12 posts each, clustered
/// around one home hour.
fn workload() -> Vec<(String, Vec<Timestamp>)> {
    (0..8i64)
        .map(|u| {
            let posts = (0..12i64)
                .map(|p| {
                    let hour = (21 + (u * 5 + p * 3) % 4 - 2).rem_euclid(24);
                    Timestamp::from_secs(p * 86_400 + hour * 3_600 + u)
                })
                .collect();
            (format!("user{u:02}"), posts)
        })
        .collect()
}

fn ingest_body(deltas: &[(String, Vec<Timestamp>)]) -> serde_json::Value {
    let entries: Vec<serde_json::Value> = deltas
        .iter()
        .map(|(user, posts)| {
            let secs: Vec<i64> = posts.iter().map(|t| t.as_secs()).collect();
            json!({"user": user, "posts": secs})
        })
        .collect();
    json!({ "deltas": entries })
}

/// Every framing violation, the status it owes, and proof the server
/// closes the connection afterwards (resynchronizing inside a stream it
/// no longer understands is how request smuggling happens).
#[test]
fn framing_violations_get_the_right_status_and_a_close() {
    let handle = start();
    let long_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Big: {}\r\n\r\n",
        "a".repeat(9_000)
    );
    let many_headers = format!(
        "GET /healthz HTTP/1.1\r\n{}\r\n",
        (0..101).fold(String::new(), |mut acc, i| {
            acc.push_str(&format!("X-H{i}: v\r\n"));
            acc
        })
    );
    let oversized = format!(
        "POST /v1/tenants/x/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY + 1
    );
    let cases: Vec<(&str, Vec<u8>, u16)> = vec![
        ("not http at all", b"nonsense\r\n\r\n".to_vec(), 400),
        (
            "unsupported version",
            b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(),
            400,
        ),
        (
            "lowercase method token",
            b"get /healthz HTTP/1.1\r\n\r\n".to_vec(),
            400,
        ),
        (
            "unparseable content-length",
            b"POST /v1/tenants HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            400,
        ),
        (
            "negative content-length",
            b"POST /v1/tenants HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            400,
        ),
        (
            "header line without a colon",
            b"GET /healthz HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
            400,
        ),
        (
            "space inside header name",
            b"GET /healthz HTTP/1.1\r\nBad Name: v\r\n\r\n".to_vec(),
            400,
        ),
        ("oversized header line", long_header.into_bytes(), 400),
        ("more than 100 headers", many_headers.into_bytes(), 400),
        (
            "chunked transfer-encoding",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        ("content-length beyond the cap", oversized.into_bytes(), 413),
        (
            "non-utf8 request head",
            b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec(),
            400,
        ),
    ];
    for (name, bytes, want) in cases {
        let mut client = HttpClient::connect(handle.addr()).expect("connect");
        client.send_raw(&bytes).expect("send");
        let response = client.read_response(false).expect(name);
        assert_eq!(response.status, want, "{name}");
        assert_eq!(
            response.header("connection"),
            Some("close"),
            "{name}: parse-layer errors must close"
        );
        assert!(
            client.get("/healthz").is_err(),
            "{name}: connection must actually be closed"
        );
    }
    assert_unharmed(&handle);
    handle.shutdown().expect("shutdown");
}

/// A peer that dies mid-request gets silence, not a response — and the
/// worker moves on to the next connection unharmed.
#[test]
fn mid_request_disconnects_get_silence_and_harm_nothing() {
    let handle = start();
    let partials: [&[u8]; 3] = [
        // EOF inside the request line.
        b"POST /v1/tenants/alpha/in",
        // EOF between headers.
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nContent-Len",
        // EOF inside a declared body.
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"del",
    ];
    for partial in partials {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.write_all(partial).expect("partial write");
        stream.shutdown(Shutdown::Write).expect("half-close");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        assert!(
            reply.is_empty(),
            "truncated request must get no response, got {:?}",
            String::from_utf8_lossy(&reply)
        );
    }
    assert_unharmed(&handle);
    handle.shutdown().expect("shutdown");
}

/// Application-layer rejections consumed their body, so framing is
/// intact and the connection stays open — one connection survives the
/// whole gauntlet and still serves a 200 at the end.
#[test]
fn application_errors_keep_the_connection_open() {
    let handle = start();
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    let created = client
        .post_json(
            "/v1/tenants/alpha",
            &json!({"grid": "hourly", "min_posts": 3}),
        )
        .expect("create");
    assert_eq!(created.status, 201);

    // (method, path, body, expected status)
    let cases: Vec<(&str, &str, Option<&[u8]>, u16)> = vec![
        // Duplicate tenant.
        ("POST", "/v1/tenants/alpha", Some(b"{}"), 409),
        // Names that would escape the durable root.
        ("POST", "/v1/tenants/..evil", Some(b"{}"), 400),
        ("POST", "/v1/tenants/bad!name", Some(b"{}"), 400),
        // Durable tenant on a server with no durable root.
        (
            "POST",
            "/v1/tenants/beta",
            Some(br#"{"durable": true}"#),
            503,
        ),
        // Config that isn't an object / has a bad grid.
        ("POST", "/v1/tenants/gamma", Some(b"[1,2]"), 400),
        ("POST", "/v1/tenants/gamma", Some(br#"{"grid": 25}"#), 400),
        // Ingest: unknown tenant, non-JSON, JSON of the wrong shape.
        ("POST", "/v1/tenants/ghost/ingest", Some(b"{}"), 404),
        ("POST", "/v1/tenants/alpha/ingest", Some(b"not json"), 400),
        ("POST", "/v1/tenants/alpha/ingest", Some(b"{}"), 400),
        (
            "POST",
            "/v1/tenants/alpha/ingest",
            Some(br#"{"deltas": [{"user": 7, "posts": []}]}"#),
            400,
        ),
        (
            "POST",
            "/v1/tenants/alpha/ingest",
            Some(br#"{"deltas": [{"user": "u", "posts": ["x"]}]}"#),
            400,
        ),
        // Wrong method on known paths.
        ("DELETE", "/healthz", None, 405),
        ("POST", "/metrics", Some(b"{}"), 405),
        ("GET", "/v1/tenants/alpha/ingest", None, 405),
        // Unknown paths and bad query parameters.
        ("GET", "/v1/nope", None, 404),
        ("GET", "/v1/tenants/alpha/drift?top=banana", None, 400),
        ("GET", "/v1/tenants/ghost/snapshot", None, 404),
        // Nothing published yet on a real tenant.
        ("GET", "/v1/tenants/alpha/snapshot", None, 404),
    ];
    for (method, path, body, want) in cases {
        let response = client
            .request(method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path}: {e}"));
        assert_eq!(response.status, want, "{method} {path}");
        if want == 405 {
            assert!(
                response.header("allow").is_some(),
                "{method} {path}: 405 must carry Allow"
            );
        }
        assert_ne!(
            response.header("connection"),
            Some("close"),
            "{method} {path}: application errors must not close"
        );
    }
    // The same connection still works.
    let health = client.get("/healthz").expect("healthz after gauntlet");
    assert_eq!(health.status, 200);
    assert_unharmed(&handle);
    handle.shutdown().expect("shutdown");
}

/// Pipelined requests — including a rejected one — are answered in
/// order on one connection.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = start();
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    client
        .send_raw(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              GET /v1/tenants HTTP/1.1\r\n\r\n\
              GET /v1/nowhere HTTP/1.1\r\n\r\n\
              GET /metrics HTTP/1.1\r\n\r\n",
        )
        .expect("pipeline");
    let statuses: Vec<u16> = (0..4)
        .map(|i| {
            client
                .read_response(false)
                .unwrap_or_else(|e| panic!("pipelined response {i}: {e}"))
                .status
        })
        .collect();
    assert_eq!(statuses, [200, 200, 404, 200]);
    // Still open after the pipelined burst.
    assert_eq!(client.get("/healthz").expect("after burst").status, 200);
    assert_unharmed(&handle);
    handle.shutdown().expect("shutdown");
}

/// The poisoning check: a tenant that ingested real data, then had every
/// kind of garbage thrown at the server, still publishes bytes identical
/// to an in-process engine that never saw any of it.
#[test]
fn garbage_never_poisons_a_tenant() {
    let handle = start();
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    let created = client
        .post_json(
            "/v1/tenants/alpha",
            &json!({"grid": "hourly", "min_posts": 3}),
        )
        .expect("create");
    assert_eq!(created.status, 201);
    let deltas = workload();
    let ingested = client
        .post_json("/v1/tenants/alpha/ingest", &ingest_body(&deltas))
        .expect("ingest");
    assert_eq!(ingested.status, 200);

    // The attack wave: framing garbage, truncation, and valid-framing
    // bad payloads aimed at the tenant itself, each on its own
    // connection.
    let attacks: [&[u8]; 6] = [
        b"nonsense\r\n\r\n",
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nContent-Length: 40\r\n\r\n{\"deltas\": [{\"user\"",
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json",
        b"POST /v1/tenants/alpha/ingest HTTP/1.1\r\nContent-Length: 31\r\n\r\n{\"deltas\": [{\"user\": \"x\"}]}\r\n\r\n",
    ];
    for attack in attacks {
        let mut raw = TcpStream::connect(handle.addr()).expect("connect");
        raw.write_all(attack).expect("attack write");
        raw.shutdown(Shutdown::Write).expect("half-close");
        raw.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink);
    }

    // Byte-identity against an engine that saw only the good deltas.
    let engine = ConcurrentStreamingPipeline::new(GeolocationPipeline::default().min_posts(3));
    let writer = engine.writer();
    for (user, posts) in &deltas {
        writer.ingest(user, posts).expect("reference ingest");
    }
    let reference = serde_json::to_vec(engine.publish().expect("reference publish").report())
        .expect("serialize");
    let snapshot = client
        .get("/v1/tenants/alpha/snapshot?publish=1")
        .expect("publish");
    assert_eq!(snapshot.status, 200);
    assert_eq!(
        snapshot.body, reference,
        "garbage traffic altered the tenant's analysis"
    );
    assert_unharmed(&handle);
    handle.shutdown().expect("shutdown");
}

/// A valid ingest request template for the fuzzing strategy below.
fn template(addr: SocketAddr) -> Vec<u8> {
    let body = serde_json::to_vec(&ingest_body(&workload()[..2])).expect("body");
    let mut bytes = format!(
        "POST /v1/tenants/alpha/ingest HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Length: {}\r\nContent-Type: application/json\r\n\r\n",
        body.len()
    )
    .into_bytes();
    bytes.extend_from_slice(&body);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzz: random byte substitutions and truncations of a *valid*
    /// ingest request. Whatever comes back (an error, a success on a
    /// still-valid mutant, or silence), the server neither panics nor
    /// stops serving.
    #[test]
    fn mutated_valid_requests_never_take_the_server_down(
        indices in collection::vec(0usize..100_000, 1..8),
        replacements in collection::vec(any::<u8>(), 7),
        cut in 0usize..100_000,
        truncate in any::<bool>(),
    ) {
        let handle = start();
        let mut client = HttpClient::connect(handle.addr()).expect("connect");
        let created = client
            .post_json("/v1/tenants/alpha", &json!({"grid": "hourly", "min_posts": 3}))
            .expect("create");
        prop_assert_eq!(created.status, 201);

        let mut bytes = template(handle.addr());
        for (index, byte) in indices.iter().zip(&replacements) {
            let i = index % bytes.len();
            bytes[i] = *byte;
        }
        if truncate {
            bytes.truncate(cut % bytes.len());
        }

        let mut attacker = TcpStream::connect(handle.addr()).expect("connect");
        attacker.write_all(&bytes).expect("mutant write");
        attacker.shutdown(Shutdown::Write).expect("half-close");
        attacker
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut sink = Vec::new();
        let _ = attacker.read_to_end(&mut sink);
        drop(attacker);

        assert_unharmed(&handle);
        handle.shutdown().expect("shutdown");
    }
}
