//! Fixed UTC offsets.

use std::fmt;
use std::ops::{Add, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::error::TimeError;

/// A fixed offset from UTC, east positive, at quarter-hour granularity.
///
/// Real-world offsets range from UTC−12 to UTC+14 and are all multiples of
/// 15 minutes; the type enforces `±18 h` and the alignment so that every
/// value is a plausible offset.
///
/// The paper works with the 24 *integral* time zones UTC−11 … UTC+12; see
/// [`TzOffset::canonical_zones`].
///
/// ```
/// use crowdtz_time::TzOffset;
///
/// let cet = TzOffset::from_hours(1)?;
/// assert_eq!(cet.to_string(), "UTC+1");
/// assert_eq!(TzOffset::from_minutes(330)?.to_string(), "UTC+5:30"); // India
/// # Ok::<(), crowdtz_time::TimeError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TzOffset {
    seconds: i32,
}

impl TzOffset {
    /// The UTC offset (zero).
    pub const UTC: TzOffset = TzOffset { seconds: 0 };

    const MAX_SECONDS: i32 = 18 * 3_600;

    /// Creates an offset from whole hours east of UTC.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidOffset`] outside `±18` hours.
    pub fn from_hours(hours: i32) -> Result<TzOffset, TimeError> {
        Self::from_seconds(hours.saturating_mul(3_600))
    }

    /// Creates an offset from whole minutes east of UTC.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidOffset`] outside `±18` hours or when the
    /// offset is not a multiple of 15 minutes.
    pub fn from_minutes(minutes: i32) -> Result<TzOffset, TimeError> {
        Self::from_seconds(minutes.saturating_mul(60))
    }

    /// Creates an offset from seconds east of UTC.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidOffset`] outside `±18` hours or when the
    /// offset is not a multiple of 900 s (a quarter hour).
    pub fn from_seconds(seconds: i32) -> Result<TzOffset, TimeError> {
        if seconds.abs() > Self::MAX_SECONDS || seconds % 900 != 0 {
            return Err(TimeError::InvalidOffset { seconds });
        }
        Ok(TzOffset { seconds })
    }

    /// The offset in seconds east of UTC.
    pub const fn seconds(self) -> i32 {
        self.seconds
    }

    /// The offset in fractional hours east of UTC.
    pub fn hours(self) -> f64 {
        f64::from(self.seconds) / 3_600.0
    }

    /// The offset in whole hours, rounding toward the nearest hour.
    ///
    /// Used when snapping a fractional fit (e.g. a Gaussian mean of 1.3) to
    /// a canonical integral time zone.
    pub fn whole_hours(self) -> i32 {
        (f64::from(self.seconds) / 3_600.0).round() as i32
    }

    /// The 24 canonical integral zones UTC−11 … UTC+12, in ascending order.
    ///
    /// These are the bins the paper places anonymous users into.
    ///
    /// ```
    /// use crowdtz_time::TzOffset;
    /// let zones = TzOffset::canonical_zones();
    /// assert_eq!(zones.len(), 24);
    /// assert_eq!(zones[0].whole_hours(), -11);
    /// assert_eq!(zones[23].whole_hours(), 12);
    /// ```
    pub fn canonical_zones() -> [TzOffset; 24] {
        let mut out = [TzOffset::UTC; 24];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = TzOffset {
                seconds: (i as i32 - 11) * 3_600,
            };
        }
        out
    }

    /// Index of this offset within [`TzOffset::canonical_zones`]
    /// (`0` = UTC−11 … `23` = UTC+12), rounding fractional offsets.
    pub fn canonical_index(self) -> usize {
        (self.whole_hours() + 11).rem_euclid(24) as usize
    }
}

impl Add for TzOffset {
    type Output = TzOffset;

    /// Adds two offsets, saturating at ±18 h.
    fn add(self, rhs: TzOffset) -> TzOffset {
        TzOffset {
            seconds: (self.seconds + rhs.seconds).clamp(-Self::MAX_SECONDS, Self::MAX_SECONDS),
        }
    }
}

impl Sub for TzOffset {
    type Output = TzOffset;

    /// Subtracts two offsets, saturating at ±18 h.
    fn sub(self, rhs: TzOffset) -> TzOffset {
        TzOffset {
            seconds: (self.seconds - rhs.seconds).clamp(-Self::MAX_SECONDS, Self::MAX_SECONDS),
        }
    }
}

impl Neg for TzOffset {
    type Output = TzOffset;

    fn neg(self) -> TzOffset {
        TzOffset {
            seconds: -self.seconds,
        }
    }
}

impl fmt::Display for TzOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.seconds < 0 { '-' } else { '+' };
        let abs = self.seconds.abs();
        let h = abs / 3_600;
        let m = (abs % 3_600) / 60;
        if m == 0 {
            write!(f, "UTC{sign}{h}")
        } else {
            write!(f, "UTC{sign}{h}:{m:02}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(TzOffset::from_hours(12).is_ok());
        assert!(TzOffset::from_hours(-12).is_ok());
        assert!(TzOffset::from_hours(14).is_ok());
        assert!(TzOffset::from_hours(19).is_err());
        assert!(TzOffset::from_minutes(330).is_ok()); // +5:30
        assert!(TzOffset::from_minutes(331).is_err()); // not quarter-aligned
        assert!(TzOffset::from_seconds(1).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(TzOffset::UTC.to_string(), "UTC+0");
        assert_eq!(TzOffset::from_hours(3).unwrap().to_string(), "UTC+3");
        assert_eq!(TzOffset::from_hours(-7).unwrap().to_string(), "UTC-7");
        assert_eq!(
            TzOffset::from_minutes(-210).unwrap().to_string(),
            "UTC-3:30"
        );
    }

    #[test]
    fn canonical_zone_index_round_trip() {
        for (i, z) in TzOffset::canonical_zones().iter().enumerate() {
            assert_eq!(z.canonical_index(), i);
        }
    }

    #[test]
    fn canonical_index_rounds_fractional() {
        // UTC+5:30 rounds to UTC+6 → index 17.
        let india = TzOffset::from_minutes(330).unwrap();
        assert_eq!(india.whole_hours(), 6);
        assert_eq!(india.canonical_index(), 17);
    }

    #[test]
    fn arithmetic_and_negation() {
        let a = TzOffset::from_hours(3).unwrap();
        let b = TzOffset::from_hours(-7).unwrap();
        assert_eq!((a + b).whole_hours(), -4);
        assert_eq!((a - b).whole_hours(), 10);
        assert_eq!((-a).whole_hours(), -3);
        // Saturation.
        let max = TzOffset::from_hours(18).unwrap();
        assert_eq!((max + max).seconds(), 18 * 3_600);
    }

    #[test]
    fn ordering() {
        assert!(TzOffset::from_hours(-1).unwrap() < TzOffset::UTC);
        assert!(TzOffset::UTC < TzOffset::from_hours(1).unwrap());
    }

    #[test]
    fn hours_fractional() {
        assert_eq!(TzOffset::from_minutes(330).unwrap().hours(), 5.5);
    }
}
