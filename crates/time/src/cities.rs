//! Example cities per canonical time zone.
//!
//! The paper annotates every uncovered zone with familiar reference
//! cities — *"the UTC+3 (Bucharest, Moskow, Minsk) and the UTC+4 (Abu
//! Dhabi, Tbilisi, Yerevan) time zones"* — so investigators can read a
//! placement without a zone map. This module provides the same labels.

use crate::offset::TzOffset;

/// Example cities for each canonical zone UTC−11 … UTC+12 (2016 standard
/// time), in the index order of [`TzOffset::canonical_zones`].
const CITIES: [&str; 24] = [
    "Pago Pago, Niue",                         // −11
    "Honolulu, Papeete",                       // −10
    "Anchorage, Gambier Islands",              // −9
    "Los Angeles, San Francisco, Vancouver",   // −8
    "Denver, Phoenix, Chihuahua",              // −7
    "Chicago, New Orleans, Mexico City",       // −6
    "New York, Toronto, Bogotá, Lima",         // −5
    "Halifax, Caracas, La Paz",                // −4
    "Rio de Janeiro, São Paulo, Buenos Aires", // −3
    "South Georgia, Fernando de Noronha",      // −2
    "Azores, Praia",                           // −1
    "London, Lisbon, Accra, Reykjavík",        // 0
    "Berlin, Paris, Rome, Lagos",              // +1
    "Athens, Cairo, Johannesburg, Kyiv",       // +2
    "Bucharest, Moscow, Minsk, Istanbul",      // +3
    "Abu Dhabi, Tbilisi, Yerevan, Samara",     // +4
    "Karachi, Tashkent, Yekaterinburg",        // +5
    "Dhaka, Almaty, Omsk",                     // +6
    "Bangkok, Jakarta, Hanoi",                 // +7
    "Beijing, Singapore, Kuala Lumpur, Perth", // +8
    "Tokyo, Seoul, Yakutsk",                   // +9
    "Sydney, Melbourne, Vladivostok",          // +10
    "Nouméa, Magadan, Honiara",                // +11
    "Auckland, Suva, Kamchatka",               // +12
];

/// Example cities living at the given offset (rounded to the nearest
/// canonical zone).
///
/// ```
/// use crowdtz_time::{zone_cities, TzOffset};
/// assert!(zone_cities(TzOffset::from_hours(3)?).contains("Moscow"));
/// assert!(zone_cities(TzOffset::UTC).contains("London"));
/// # Ok::<(), crowdtz_time::TimeError>(())
/// ```
pub fn zone_cities(offset: TzOffset) -> &'static str {
    CITIES[offset.canonical_index()]
}

/// A display label for a zone: `"UTC+3 (Bucharest, Moscow, Minsk, …)"`.
pub fn zone_label(offset: TzOffset) -> String {
    format!("{} ({})", offset, zone_cities(offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_city_examples_match() {
        // Cities the paper cites per zone.
        let h = |n: i32| TzOffset::from_hours(n).unwrap();
        assert!(zone_cities(h(3)).contains("Moscow"));
        assert!(zone_cities(h(4)).contains("Tbilisi"));
        assert!(zone_cities(h(4)).contains("Abu Dhabi"));
        assert!(zone_cities(h(-6)).contains("Chicago"));
        assert!(zone_cities(h(-6)).contains("New Orleans"));
        assert!(zone_cities(h(-3)).contains("Rio de Janeiro"));
        assert!(zone_cities(h(-8)).contains("San Francisco"));
        assert!(zone_cities(h(1)).contains("Berlin"));
    }

    #[test]
    fn every_canonical_zone_has_cities() {
        for z in TzOffset::canonical_zones() {
            assert!(!zone_cities(z).is_empty());
        }
    }

    #[test]
    fn label_format() {
        let label = zone_label(TzOffset::from_hours(-6).unwrap());
        assert!(label.starts_with("UTC-6 ("), "{label}");
        assert!(label.ends_with(')'), "{label}");
    }

    #[test]
    fn fractional_offsets_round() {
        let india = TzOffset::from_minutes(330).unwrap(); // +5:30 → +6
        assert!(zone_cities(india).contains("Dhaka"));
    }
}
