//! Proleptic-Gregorian calendar arithmetic.
//!
//! The conversions between calendar dates and day counts use the classic
//! era-based algorithms (Howard Hinnant's `days_from_civil` /
//! `civil_from_days`), which are exact over the entire supported range.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TimeError;

/// Minimum supported year (inclusive).
pub const MIN_YEAR: i32 = -9999;
/// Maximum supported year (inclusive).
pub const MAX_YEAR: i32 = 9999;

/// A month of the Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Month {
    January = 1,
    February = 2,
    March = 3,
    April = 4,
    May = 5,
    June = 6,
    July = 7,
    August = 8,
    September = 9,
    October = 10,
    November = 11,
    December = 12,
}

impl Month {
    /// All months, January first.
    pub const ALL: [Month; 12] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
        Month::August,
        Month::September,
        Month::October,
        Month::November,
        Month::December,
    ];

    /// Returns the month with the given 1-based number, if valid.
    ///
    /// ```
    /// use crowdtz_time::Month;
    /// assert_eq!(Month::from_number(3), Some(Month::March));
    /// assert_eq!(Month::from_number(0), None);
    /// ```
    pub fn from_number(n: u8) -> Option<Month> {
        Month::ALL.get(n.checked_sub(1)? as usize).copied()
    }

    /// The 1-based month number (January = 1).
    pub fn number(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Month::January => "January",
            Month::February => "February",
            Month::March => "March",
            Month::April => "April",
            Month::May => "May",
            Month::June => "June",
            Month::July => "July",
            Month::August => "August",
            Month::September => "September",
            Month::October => "October",
            Month::November => "November",
            Month::December => "December",
        };
        f.write_str(name)
    }
}

/// A day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday = 0,
    Tuesday = 1,
    Wednesday = 2,
    Thursday = 3,
    Friday = 4,
    Saturday = 5,
    Sunday = 6,
}

impl Weekday {
    /// All weekdays, Monday first (ISO order).
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Index with Monday = 0 … Sunday = 6.
    pub fn index_from_monday(self) -> u8 {
        self as u8
    }

    /// Whether this day falls on the weekend (Saturday or Sunday).
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        };
        f.write_str(name)
    }
}

/// A calendar date in the proleptic Gregorian calendar.
///
/// Ordered chronologically; the internal representation is validated on
/// construction, so every in-scope `Date` names a real day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date after validating all components.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidDate`] if the month or day are out of
    /// range for the given year, and [`TimeError::YearOutOfRange`] if the
    /// year lies outside `[-9999, 9999]`.
    ///
    /// ```
    /// use crowdtz_time::Date;
    /// assert!(Date::new(2016, 2, 29).is_ok()); // leap year
    /// assert!(Date::new(2017, 2, 29).is_err());
    /// ```
    pub fn new(year: i32, month: u8, day: u8) -> Result<Date, TimeError> {
        if !(MIN_YEAR..=MAX_YEAR).contains(&year) {
            return Err(TimeError::YearOutOfRange { year });
        }
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(TimeError::InvalidDate { year, month, day });
        }
        Ok(Date { year, month, day })
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component.
    pub fn month(&self) -> Month {
        Month::from_number(self.month).expect("validated at construction")
    }

    /// The 1-based month number.
    pub fn month_number(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1-based).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Number of days since the Unix epoch (1970-01-01 = 0); negative before.
    ///
    /// ```
    /// use crowdtz_time::Date;
    /// assert_eq!(Date::new(1970, 1, 1)?.days_since_epoch(), 0);
    /// assert_eq!(Date::new(1970, 1, 2)?.days_since_epoch(), 1);
    /// assert_eq!(Date::new(1969, 12, 31)?.days_since_epoch(), -1);
    /// # Ok::<(), crowdtz_time::TimeError>(())
    /// ```
    pub fn days_since_epoch(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// The date `days` days since the Unix epoch.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::YearOutOfRange`] if the resulting year falls
    /// outside the supported range.
    pub fn from_days_since_epoch(days: i64) -> Result<Date, TimeError> {
        let (year, month, day) = civil_from_days(days);
        if !(MIN_YEAR..=MAX_YEAR).contains(&year) {
            return Err(TimeError::YearOutOfRange { year });
        }
        Ok(Date { year, month, day })
    }

    /// The weekday of this date.
    ///
    /// ```
    /// use crowdtz_time::{Date, Weekday};
    /// // 2016-07-15 was a Friday.
    /// assert_eq!(Date::new(2016, 7, 15)?.weekday(), Weekday::Friday);
    /// # Ok::<(), crowdtz_time::TimeError>(())
    /// ```
    pub fn weekday(&self) -> Weekday {
        // 1970-01-01 was a Thursday (index 3 from Monday).
        let days = self.days_since_epoch();
        let idx = (days + 3).rem_euclid(7) as usize;
        Weekday::ALL[idx]
    }

    /// The 1-based ordinal day within the year (1–365/366).
    pub fn day_of_year(&self) -> u16 {
        let jan1 = days_from_civil(self.year, 1, 1);
        (self.days_since_epoch() - jan1 + 1) as u16
    }

    /// The date `n` days after this one (or before, if negative).
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::YearOutOfRange`] if the result is out of range.
    pub fn add_days(&self, n: i64) -> Result<Date, TimeError> {
        Date::from_days_since_epoch(self.days_since_epoch() + n)
    }

    /// Returns an iterator over all dates from `self` to `end` inclusive.
    ///
    /// Yields nothing if `end < self`.
    pub fn iter_to(self, end: Date) -> DateRange {
        DateRange {
            next: self.days_since_epoch(),
            last: end.days_since_epoch(),
        }
    }

    /// The `n`-th (1-based) given weekday of a month, e.g. the 2nd Sunday of
    /// March 2016.
    ///
    /// Returns `None` if the month has no such day (e.g. a 5th Friday in a
    /// month with only four).
    pub fn nth_weekday_of_month(year: i32, month: Month, weekday: Weekday, n: u8) -> Option<Date> {
        if n == 0 {
            return None;
        }
        let first = Date::new(year, month.number(), 1).ok()?;
        let offset = (weekday.index_from_monday() + 7 - first.weekday().index_from_monday()) % 7;
        let day = 1 + offset + (n - 1) * 7;
        Date::new(year, month.number(), day).ok()
    }

    /// The last given weekday of a month, e.g. the last Sunday of October.
    pub fn last_weekday_of_month(year: i32, month: Month, weekday: Weekday) -> Date {
        let last_day = days_in_month(year, month.number());
        let last = Date::new(year, month.number(), last_day).expect("valid month end");
        let back = (last.weekday().index_from_monday() + 7 - weekday.index_from_monday()) % 7;
        Date::new(year, month.number(), last_day - back).expect("within month")
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Iterator over an inclusive range of dates. Created by [`Date::iter_to`].
#[derive(Debug, Clone)]
pub struct DateRange {
    next: i64,
    last: i64,
}

impl Iterator for DateRange {
    type Item = Date;

    fn next(&mut self) -> Option<Date> {
        if self.next > self.last {
            return None;
        }
        let d = Date::from_days_since_epoch(self.next).ok()?;
        self.next += 1;
        Some(d)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.last - self.next + 1).max(0) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DateRange {}

/// A civil (wall-clock) date and time, with second precision.
///
/// A `CivilDateTime` is time-zone-agnostic: it is what a clock on the wall
/// shows. Pair it with a [`crate::Zone`] or [`crate::TzOffset`] to name an
/// instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDateTime {
    date: Date,
    hour: u8,
    minute: u8,
    second: u8,
}

impl CivilDateTime {
    /// Creates a civil date-time after validating all components.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidDate`] / [`TimeError::InvalidTimeOfDay`]
    /// on out-of-range components.
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<CivilDateTime, TimeError> {
        let date = Date::new(year, month, day)?;
        Self::from_date_time(date, hour, minute, second)
    }

    /// Creates a civil date-time from a [`Date`] and a time of day.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidTimeOfDay`] on out-of-range components.
    pub fn from_date_time(
        date: Date,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<CivilDateTime, TimeError> {
        if hour > 23 || minute > 59 || second > 59 {
            return Err(TimeError::InvalidTimeOfDay {
                hour,
                minute,
                second,
            });
        }
        Ok(CivilDateTime {
            date,
            hour,
            minute,
            second,
        })
    }

    /// Midnight at the start of the given date.
    pub fn midnight(date: Date) -> CivilDateTime {
        CivilDateTime {
            date,
            hour: 0,
            minute: 0,
            second: 0,
        }
    }

    /// The calendar date component.
    pub fn date(&self) -> Date {
        self.date
    }

    /// The hour of day, `0..=23`.
    pub fn hour(&self) -> u8 {
        self.hour
    }

    /// The minute, `0..=59`.
    pub fn minute(&self) -> u8 {
        self.minute
    }

    /// The second, `0..=59`.
    pub fn second(&self) -> u8 {
        self.second
    }

    /// Seconds since the Unix epoch of this wall time *interpreted as UTC*.
    pub fn seconds_since_epoch_as_utc(&self) -> i64 {
        self.date.days_since_epoch() * crate::SECS_PER_DAY
            + self.hour as i64 * crate::SECS_PER_HOUR
            + self.minute as i64 * 60
            + self.second as i64
    }

    /// Builds the civil time that, read as UTC, equals the given epoch
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::YearOutOfRange`] if out of calendar range.
    pub fn from_seconds_since_epoch_utc(secs: i64) -> Result<CivilDateTime, TimeError> {
        let days = secs.div_euclid(crate::SECS_PER_DAY);
        let rem = secs.rem_euclid(crate::SECS_PER_DAY);
        let date = Date::from_days_since_epoch(days)?;
        Ok(CivilDateTime {
            date,
            hour: (rem / crate::SECS_PER_HOUR) as u8,
            minute: ((rem % crate::SECS_PER_HOUR) / 60) as u8,
            second: (rem % 60) as u8,
        })
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

/// Whether `year` is a Gregorian leap year.
///
/// ```
/// use crowdtz_time::Date;
/// assert_eq!(Date::new(2000, 2, 29).is_ok(), true);
/// assert_eq!(Date::new(1900, 2, 29).is_ok(), false);
/// ```
pub(crate) fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month of the given year.
pub(crate) fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::new(1970, 1, 1).unwrap();
        assert_eq!(d.days_since_epoch(), 0);
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_day_counts() {
        // 2016-01-01 is 16801 days after the epoch.
        assert_eq!(Date::new(2016, 1, 1).unwrap().days_since_epoch(), 16_801);
        assert_eq!(Date::new(2000, 3, 1).unwrap().days_since_epoch(), 11_017);
        assert_eq!(Date::new(1969, 12, 31).unwrap().days_since_epoch(), -1);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2017, 2, 29).is_err());
        assert!(Date::new(2016, 2, 29).is_ok());
        assert!(Date::new(2016, 13, 1).is_err());
        assert!(Date::new(2016, 0, 1).is_err());
        assert!(Date::new(2016, 4, 31).is_err());
        assert!(Date::new(2016, 4, 0).is_err());
        assert!(Date::new(10_000, 1, 1).is_err());
        assert!(Date::new(-10_000, 1, 1).is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2016));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2017));
        assert!(is_leap_year(2400));
    }

    #[test]
    fn weekday_progression() {
        let mut d = Date::new(2016, 1, 1).unwrap(); // a Friday
        assert_eq!(d.weekday(), Weekday::Friday);
        for expected in [
            Weekday::Saturday,
            Weekday::Sunday,
            Weekday::Monday,
            Weekday::Tuesday,
        ] {
            d = d.add_days(1).unwrap();
            assert_eq!(d.weekday(), expected);
        }
    }

    #[test]
    fn day_of_year() {
        assert_eq!(Date::new(2016, 1, 1).unwrap().day_of_year(), 1);
        assert_eq!(Date::new(2016, 12, 31).unwrap().day_of_year(), 366);
        assert_eq!(Date::new(2017, 12, 31).unwrap().day_of_year(), 365);
        assert_eq!(Date::new(2016, 3, 1).unwrap().day_of_year(), 61);
    }

    #[test]
    fn nth_weekday() {
        // Second Sunday of March 2016 was the 13th (US DST start).
        let d = Date::nth_weekday_of_month(2016, Month::March, Weekday::Sunday, 2).unwrap();
        assert_eq!(d, Date::new(2016, 3, 13).unwrap());
        // First Sunday of November 2016 was the 6th (US DST end).
        let d = Date::nth_weekday_of_month(2016, Month::November, Weekday::Sunday, 1).unwrap();
        assert_eq!(d, Date::new(2016, 11, 6).unwrap());
        // No 5th Sunday in November 2016.
        assert!(Date::nth_weekday_of_month(2016, Month::November, Weekday::Sunday, 5).is_none());
        assert!(Date::nth_weekday_of_month(2016, Month::November, Weekday::Sunday, 0).is_none());
    }

    #[test]
    fn last_weekday() {
        // Last Sunday of March 2016 was the 27th (EU DST start).
        let d = Date::last_weekday_of_month(2016, Month::March, Weekday::Sunday);
        assert_eq!(d, Date::new(2016, 3, 27).unwrap());
        // Last Sunday of October 2016 was the 30th (EU DST end).
        let d = Date::last_weekday_of_month(2016, Month::October, Weekday::Sunday);
        assert_eq!(d, Date::new(2016, 10, 30).unwrap());
    }

    #[test]
    fn date_range_iteration() {
        let a = Date::new(2016, 2, 27).unwrap();
        let b = Date::new(2016, 3, 2).unwrap();
        let days: Vec<Date> = a.iter_to(b).collect();
        assert_eq!(days.len(), 5); // 27, 28, 29 (leap), 1, 2
        assert_eq!(days[2], Date::new(2016, 2, 29).unwrap());
        assert_eq!(days.last().copied(), Some(b));
        // Empty when reversed.
        assert_eq!(b.iter_to(a).count(), 0);
        // ExactSizeIterator agrees.
        assert_eq!(a.iter_to(b).len(), 5);
    }

    #[test]
    fn civil_datetime_round_trip_known() {
        let c = CivilDateTime::new(2016, 7, 15, 12, 34, 56).unwrap();
        let secs = c.seconds_since_epoch_as_utc();
        assert_eq!(secs, 1_468_586_096);
        let back = CivilDateTime::from_seconds_since_epoch_utc(secs).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn civil_datetime_rejects_bad_time() {
        assert!(CivilDateTime::new(2016, 1, 1, 24, 0, 0).is_err());
        assert!(CivilDateTime::new(2016, 1, 1, 0, 60, 0).is_err());
        assert!(CivilDateTime::new(2016, 1, 1, 0, 0, 60).is_err());
    }

    #[test]
    fn civil_datetime_negative_epoch() {
        let c = CivilDateTime::from_seconds_since_epoch_utc(-1).unwrap();
        assert_eq!(c.to_string(), "1969-12-31 23:59:59");
    }

    #[test]
    fn display_formats() {
        let c = CivilDateTime::new(2016, 1, 5, 9, 3, 0).unwrap();
        assert_eq!(c.to_string(), "2016-01-05 09:03:00");
        assert_eq!(Month::July.to_string(), "July");
        assert_eq!(Weekday::Sunday.to_string(), "Sunday");
    }

    #[test]
    fn month_numbering() {
        for (i, m) in Month::ALL.iter().enumerate() {
            assert_eq!(m.number() as usize, i + 1);
            assert_eq!(Month::from_number(m.number()), Some(*m));
        }
        assert_eq!(Month::from_number(13), None);
    }

    #[test]
    fn weekend_detection() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
        assert!(!Weekday::Wednesday.is_weekend());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(2016, 1, 31).unwrap();
        let b = Date::new(2016, 2, 1).unwrap();
        assert!(a < b);
        let c1 = CivilDateTime::new(2016, 2, 1, 0, 0, 0).unwrap();
        let c2 = CivilDateTime::new(2016, 2, 1, 0, 0, 1).unwrap();
        assert!(c1 < c2);
    }

    #[test]
    fn serde_round_trip() {
        let d = Date::new(2016, 2, 29).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: Date = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
