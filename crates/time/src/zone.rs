//! Time zones: a standard offset plus an optional DST rule.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::calendar::CivilDateTime;
use crate::dst::DstRule;
use crate::error::TimeError;
use crate::offset::TzOffset;
use crate::timestamp::Timestamp;

/// The hemisphere a region lies in, as inferable from its DST calendar.
///
/// §V.F of the paper: regions whose clocks move forward around March are
/// northern, regions that move forward around October are southern, and
/// regions without DST give no signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hemisphere {
    /// Northern hemisphere (DST roughly March → October).
    Northern,
    /// Southern hemisphere (DST roughly October → February/March).
    Southern,
    /// No DST observed; the hemisphere cannot be told apart by this method.
    Unknown,
}

impl fmt::Display for Hemisphere {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Hemisphere::Northern => "northern",
            Hemisphere::Southern => "southern",
            Hemisphere::Unknown => "unknown",
        })
    }
}

/// A time zone: standard UTC offset plus an optional daylight-saving rule.
///
/// ```
/// use crowdtz_time::{CivilDateTime, Timestamp, TzOffset, Zone};
///
/// let rome = Zone::eu(TzOffset::from_hours(1)?);
/// let winter = Timestamp::from_civil_utc(CivilDateTime::new(2016, 1, 15, 12, 0, 0)?);
/// let summer = Timestamp::from_civil_utc(CivilDateTime::new(2016, 7, 15, 12, 0, 0)?);
/// assert_eq!(rome.offset_at(winter).whole_hours(), 1);
/// assert_eq!(rome.offset_at(summer).whole_hours(), 2);
/// # Ok::<(), crowdtz_time::TimeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Zone {
    standard: TzOffset,
    dst: Option<DstRule>,
}

impl Zone {
    /// A zone with a fixed offset and no daylight saving.
    pub const fn fixed(standard: TzOffset) -> Zone {
        Zone {
            standard,
            dst: None,
        }
    }

    /// A zone with the given standard offset and the EU DST rule.
    pub fn eu(standard: TzOffset) -> Zone {
        Zone {
            standard,
            dst: Some(DstRule::eu()),
        }
    }

    /// A zone with the given standard offset and the US DST rule.
    pub fn us(standard: TzOffset) -> Zone {
        Zone {
            standard,
            dst: Some(DstRule::us()),
        }
    }

    /// A zone with a custom DST rule.
    pub fn with_dst(standard: TzOffset, rule: DstRule) -> Zone {
        Zone {
            standard,
            dst: Some(rule),
        }
    }

    /// The standard (winter) offset.
    pub fn standard_offset(&self) -> TzOffset {
        self.standard
    }

    /// The DST rule, if the zone observes daylight saving.
    pub fn dst_rule(&self) -> Option<DstRule> {
        self.dst
    }

    /// The hemisphere implied by the DST rule.
    pub fn hemisphere(&self) -> Hemisphere {
        match self.dst {
            None => Hemisphere::Unknown,
            Some(rule) if rule.is_southern() => Hemisphere::Southern,
            Some(_) => Hemisphere::Northern,
        }
    }

    /// The effective UTC offset at the given instant (standard or DST).
    pub fn offset_at(&self, ts: Timestamp) -> TzOffset {
        match self.dst {
            None => self.standard,
            Some(rule) => {
                let local_standard = ts.to_civil_offset(self.standard).unwrap_or_else(|_| {
                    CivilDateTime::midnight(
                        crate::calendar::Date::new(1970, 1, 1).expect("epoch date"),
                    )
                });
                if rule.is_dst_at(local_standard) {
                    TzOffset::from_seconds(self.standard.seconds() + rule.shift_secs())
                        .unwrap_or(self.standard)
                } else {
                    self.standard
                }
            }
        }
    }

    /// The local civil time of an instant in this zone, DST included.
    ///
    /// Instants outside the supported calendar range are clamped to the
    /// epoch, which cannot occur for the 2015–2018 windows this project
    /// works with.
    pub fn to_local(&self, ts: Timestamp) -> CivilDateTime {
        ts.to_civil_offset(self.offset_at(ts)).unwrap_or_else(|_| {
            CivilDateTime::midnight(crate::calendar::Date::new(1970, 1, 1).expect("epoch date"))
        })
    }

    /// The local hour of day, `0..=23`, of an instant in this zone.
    pub fn local_hour(&self, ts: Timestamp) -> u8 {
        ts.hour_in_offset(self.offset_at(ts))
    }

    /// Converts a local civil time in this zone to an instant.
    ///
    /// During the (at most one-hour) skipped or ambiguous wall times
    /// around DST transitions the DST reading is used — the result is
    /// always within one hour of the alternative, which is the resolution
    /// this project's hour-granular analysis works at.
    ///
    /// # Errors
    ///
    /// Propagates [`TimeError::YearOutOfRange`] from calendar conversion.
    pub fn from_local(&self, local: CivilDateTime) -> Result<Timestamp, TimeError> {
        let standard_guess = Timestamp::from_civil_offset(local, self.standard);
        let off = self.offset_at(standard_guess);
        Ok(Timestamp::from_civil_offset(local, off))
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dst {
            None => write!(f, "{}", self.standard),
            Some(_) => write!(f, "{} (+DST, {})", self.standard, self.hemisphere()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CivilDateTime;

    fn ts(y: i32, m: u8, d: u8, h: u8) -> Timestamp {
        Timestamp::from_civil_utc(CivilDateTime::new(y, m, d, h, 0, 0).unwrap())
    }

    #[test]
    fn fixed_zone_never_shifts() {
        let z = Zone::fixed(TzOffset::from_hours(8).unwrap());
        assert_eq!(z.offset_at(ts(2016, 1, 15, 12)).whole_hours(), 8);
        assert_eq!(z.offset_at(ts(2016, 7, 15, 12)).whole_hours(), 8);
        assert_eq!(z.hemisphere(), Hemisphere::Unknown);
    }

    #[test]
    fn eu_zone_summer_winter() {
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        assert_eq!(berlin.local_hour(ts(2016, 1, 15, 12)), 13);
        assert_eq!(berlin.local_hour(ts(2016, 7, 15, 12)), 14);
        assert_eq!(berlin.hemisphere(), Hemisphere::Northern);
    }

    #[test]
    fn us_zone_hemisphere() {
        let chicago = Zone::us(TzOffset::from_hours(-6).unwrap());
        assert_eq!(chicago.hemisphere(), Hemisphere::Northern);
        assert_eq!(chicago.local_hour(ts(2016, 1, 15, 12)), 6);
        assert_eq!(chicago.local_hour(ts(2016, 7, 15, 12)), 7);
    }

    #[test]
    fn southern_zone() {
        let sao_paulo = Zone::with_dst(TzOffset::from_hours(-3).unwrap(), DstRule::brazil());
        assert_eq!(sao_paulo.hemisphere(), Hemisphere::Southern);
        // Austral summer (January): UTC-2 effective.
        assert_eq!(sao_paulo.local_hour(ts(2016, 1, 15, 12)), 10);
        // Austral winter (July): UTC-3.
        assert_eq!(sao_paulo.local_hour(ts(2016, 7, 15, 12)), 9);
    }

    #[test]
    fn local_round_trip_away_from_transitions() {
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let local = CivilDateTime::new(2016, 5, 20, 18, 30, 0).unwrap();
        let t = berlin.from_local(local).unwrap();
        assert_eq!(berlin.to_local(t), local);
    }

    #[test]
    fn transition_instant_exact() {
        // EU DST starts 2016-03-27 02:00 local standard (=01:00 UTC for UTC+1).
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let before = ts(2016, 3, 27, 0); // 01:00 local standard
        let after = ts(2016, 3, 27, 1); // 02:00 local standard → DST
        assert_eq!(berlin.offset_at(before).whole_hours(), 1);
        assert_eq!(berlin.offset_at(after).whole_hours(), 2);
    }

    #[test]
    fn display() {
        let z = Zone::fixed(TzOffset::from_hours(3).unwrap());
        assert_eq!(z.to_string(), "UTC+3");
        let z = Zone::eu(TzOffset::from_hours(1).unwrap());
        assert!(z.to_string().contains("DST"));
    }

    #[test]
    fn skipped_wall_time_maps_into_dst() {
        // EU spring-forward 2016-03-27: 02:30 local never exists. The DST
        // reading is used: 02:30 CEST = 00:30 UTC.
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let skipped = CivilDateTime::new(2016, 3, 27, 2, 30, 0).unwrap();
        let t = berlin.from_local(skipped).unwrap();
        assert_eq!(t.to_civil_utc().unwrap().to_string(), "2016-03-27 00:30:00");
    }

    #[test]
    fn ambiguous_wall_time_resolves_consistently() {
        // EU fall-back 2016-10-30: 02:30 local occurs twice; from_local
        // must pick one deterministic reading whose round trip is within
        // the one-hour ambiguity.
        let berlin = Zone::eu(TzOffset::from_hours(1).unwrap());
        let ambiguous = CivilDateTime::new(2016, 10, 30, 2, 30, 0).unwrap();
        let t = berlin.from_local(ambiguous).unwrap();
        let back = berlin.to_local(t);
        let diff = (berlin.from_local(back).unwrap() - t).abs();
        assert!(diff == 0 || diff == 3_600, "diff {diff}");
    }

    #[test]
    fn zone_serde_round_trip() {
        let z = Zone::with_dst(TzOffset::from_hours(-3).unwrap(), DstRule::brazil());
        let json = serde_json::to_string(&z).unwrap();
        let back: Zone = serde_json::from_str(&json).unwrap();
        assert_eq!(back, z);
        assert_eq!(back.hemisphere(), Hemisphere::Southern);
    }

    #[test]
    fn offset_at_is_stable_across_a_plain_day() {
        // No transition on 2016-06-15: every hour has the same offset.
        let chicago = Zone::us(TzOffset::from_hours(-6).unwrap());
        let offsets: std::collections::HashSet<i32> = (0..24)
            .map(|h| chicago.offset_at(ts(2016, 6, 15, h)).seconds())
            .collect();
        assert_eq!(offsets.len(), 1);
    }
}
