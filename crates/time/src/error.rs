//! Error type for civil-time operations.

use std::fmt;

/// The error type returned by fallible operations in this crate.
///
/// Every variant carries enough information to report *what* input was
/// rejected, following the Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeError {
    /// A calendar date with out-of-range components was requested.
    InvalidDate {
        /// Requested year.
        year: i32,
        /// Requested month (1-based).
        month: u8,
        /// Requested day of month (1-based).
        day: u8,
    },
    /// A time of day with out-of-range components was requested.
    InvalidTimeOfDay {
        /// Requested hour.
        hour: u8,
        /// Requested minute.
        minute: u8,
        /// Requested second.
        second: u8,
    },
    /// A UTC offset outside the representable range (±18 h) or not aligned
    /// to a quarter-hour was requested.
    InvalidOffset {
        /// Requested offset in seconds east of UTC.
        seconds: i32,
    },
    /// A year outside the supported range of the calendar arithmetic.
    YearOutOfRange {
        /// Requested year.
        year: i32,
    },
    /// An unknown region identifier was looked up in a [`crate::RegionDb`].
    UnknownRegion {
        /// The identifier that failed to resolve.
        id: String,
    },
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::InvalidDate { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            TimeError::InvalidTimeOfDay {
                hour,
                minute,
                second,
            } => {
                write!(f, "invalid time of day {hour:02}:{minute:02}:{second:02}")
            }
            TimeError::InvalidOffset { seconds } => {
                write!(
                    f,
                    "invalid UTC offset of {seconds} s (must be within ±18 h and \
                     aligned to 900 s)"
                )
            }
            TimeError::YearOutOfRange { year } => {
                write!(f, "year {year} outside the supported range [-9999, 9999]")
            }
            TimeError::UnknownRegion { id } => write!(f, "unknown region id {id:?}"),
        }
    }
}

impl std::error::Error for TimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TimeError::InvalidDate {
            year: 2016,
            month: 2,
            day: 30,
        };
        assert_eq!(e.to_string(), "invalid calendar date 2016-02-30");
        let e = TimeError::InvalidTimeOfDay {
            hour: 25,
            minute: 0,
            second: 0,
        };
        assert!(e.to_string().contains("25:00:00"));
        let e = TimeError::InvalidOffset { seconds: 7 };
        assert!(e.to_string().contains('7'));
        let e = TimeError::UnknownRegion {
            id: "atlantis".into(),
        };
        assert!(e.to_string().contains("atlantis"));
    }

    #[test]
    fn error_is_send_sync_and_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TimeError>();
    }
}
