//! Instants in time.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::calendar::CivilDateTime;
use crate::error::TimeError;
use crate::offset::TzOffset;
use crate::{SECS_PER_DAY, SECS_PER_HOUR};

/// An instant in time: whole seconds since the Unix epoch, in UTC.
///
/// This is the only notion of "absolute time" in the workspace. Forum posts,
/// scraper observations, and synthetic traces all carry `Timestamp`s;
/// wall-clock views are derived through a [`crate::Zone`].
///
/// ```
/// use crowdtz_time::{CivilDateTime, Timestamp};
///
/// let t = Timestamp::from_civil_utc(CivilDateTime::new(2016, 7, 15, 12, 0, 0)?);
/// assert_eq!(t.as_secs(), 1_468_584_000);
/// assert_eq!((t + 3_600).to_civil_utc()?.hour(), 13);
/// # Ok::<(), crowdtz_time::TimeError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The Unix epoch, 1970-01-01 00:00:00 UTC.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw seconds since the Unix epoch.
    pub const fn from_secs(secs: i64) -> Timestamp {
        Timestamp(secs)
    }

    /// Seconds since the Unix epoch.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Creates a timestamp from a civil time read as UTC.
    pub fn from_civil_utc(civil: CivilDateTime) -> Timestamp {
        Timestamp(civil.seconds_since_epoch_as_utc())
    }

    /// Creates a timestamp from a civil time read in the given fixed offset.
    ///
    /// ```
    /// use crowdtz_time::{CivilDateTime, Timestamp, TzOffset};
    /// let noon_utc = Timestamp::from_civil_utc(CivilDateTime::new(2016, 1, 1, 12, 0, 0)?);
    /// let one_pm_cet =
    ///     Timestamp::from_civil_offset(CivilDateTime::new(2016, 1, 1, 13, 0, 0)?,
    ///                                  TzOffset::from_hours(1)?);
    /// assert_eq!(noon_utc, one_pm_cet);
    /// # Ok::<(), crowdtz_time::TimeError>(())
    /// ```
    pub fn from_civil_offset(civil: CivilDateTime, offset: TzOffset) -> Timestamp {
        Timestamp(civil.seconds_since_epoch_as_utc() - i64::from(offset.seconds()))
    }

    /// The UTC civil time of this instant.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::YearOutOfRange`] for instants outside the
    /// supported calendar range.
    pub fn to_civil_utc(self) -> Result<CivilDateTime, TimeError> {
        CivilDateTime::from_seconds_since_epoch_utc(self.0)
    }

    /// The civil time of this instant in the given fixed offset.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::YearOutOfRange`] for instants outside the
    /// supported calendar range.
    pub fn to_civil_offset(self, offset: TzOffset) -> Result<CivilDateTime, TimeError> {
        CivilDateTime::from_seconds_since_epoch_utc(self.0 + i64::from(offset.seconds()))
    }

    /// The hour of day, `0..=23`, of this instant in the given fixed offset.
    ///
    /// This is the fundamental observable of the paper: the bin of the
    /// activity histogram a post falls into under a candidate time zone.
    pub fn hour_in_offset(self, offset: TzOffset) -> u8 {
        let local = self.0 + i64::from(offset.seconds());
        (local.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as u8
    }

    /// The day index (days since epoch) of this instant in the given offset.
    pub fn day_in_offset(self, offset: TzOffset) -> i64 {
        (self.0 + i64::from(offset.seconds())).div_euclid(SECS_PER_DAY)
    }

    /// Saturating addition of seconds.
    pub fn saturating_add_secs(self, secs: i64) -> Timestamp {
        Timestamp(self.0.saturating_add(secs))
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.min(other.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.max(other.0))
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;

    /// Adds whole seconds.
    fn add(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;

    /// Subtracts whole seconds.
    fn sub(self, secs: i64) -> Timestamp {
        Timestamp(self.0 - secs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;

    /// The signed difference in seconds between two instants.
    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_civil_utc() {
            Ok(c) => write!(f, "{c} UTC"),
            Err(_) => write!(f, "@{}s", self.0),
        }
    }
}

impl From<i64> for Timestamp {
    fn from(secs: i64) -> Timestamp {
        Timestamp(secs)
    }
}

impl From<Timestamp> for i64 {
    fn from(t: Timestamp) -> i64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CivilDateTime;

    #[test]
    fn epoch_round_trip() {
        assert_eq!(
            Timestamp::EPOCH.to_civil_utc().unwrap().to_string(),
            "1970-01-01 00:00:00"
        );
        assert_eq!(
            Timestamp::from_civil_utc(CivilDateTime::new(1970, 1, 1, 0, 0, 0).unwrap()),
            Timestamp::EPOCH
        );
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(1_000);
        assert_eq!((t + 500).as_secs(), 1_500);
        assert_eq!((t - 500).as_secs(), 500);
        assert_eq!(t + 500 - t, 500);
        assert_eq!(t.min(t + 1), t);
        assert_eq!(t.max(t + 1), t + 1);
    }

    #[test]
    fn hour_in_offset_wraps() {
        // 23:30 UTC is 00:30 next day at UTC+1.
        let t = Timestamp::from_civil_utc(CivilDateTime::new(2016, 3, 1, 23, 30, 0).unwrap());
        assert_eq!(t.hour_in_offset(TzOffset::UTC), 23);
        assert_eq!(t.hour_in_offset(TzOffset::from_hours(1).unwrap()), 0);
        assert_eq!(t.hour_in_offset(TzOffset::from_hours(-1).unwrap()), 22);
    }

    #[test]
    fn day_in_offset_boundaries() {
        let t = Timestamp::from_civil_utc(CivilDateTime::new(1970, 1, 1, 23, 0, 0).unwrap());
        assert_eq!(t.day_in_offset(TzOffset::UTC), 0);
        assert_eq!(t.day_in_offset(TzOffset::from_hours(2).unwrap()), 1);
        let before = Timestamp::from_secs(-1);
        assert_eq!(before.day_in_offset(TzOffset::UTC), -1);
    }

    #[test]
    fn negative_instants() {
        let t = Timestamp::from_secs(-3_600);
        assert_eq!(t.hour_in_offset(TzOffset::UTC), 23);
        assert_eq!(t.to_civil_utc().unwrap().to_string(), "1969-12-31 23:00:00");
    }

    #[test]
    fn from_civil_offset_inverts_to_civil_offset() {
        let off = TzOffset::from_hours(8).unwrap();
        let civil = CivilDateTime::new(2016, 6, 1, 20, 15, 45).unwrap();
        let t = Timestamp::from_civil_offset(civil, off);
        assert_eq!(t.to_civil_offset(off).unwrap(), civil);
    }

    #[test]
    fn display_far_out_of_range_does_not_panic() {
        let t = Timestamp::from_secs(i64::MAX / 2);
        let s = t.to_string();
        assert!(s.starts_with('@'));
    }

    #[test]
    fn conversion_traits() {
        let t: Timestamp = 42i64.into();
        let s: i64 = t.into();
        assert_eq!(s, 42);
    }
}
