//! Activity traces: the `(author, post time)` pairs every other crate
//! exchanges.
//!
//! The paper's pipeline consumes exactly this shape of data — *"only author
//! ID and time of posting, without the body of the forum post"* (§VIII) —
//! whether it comes from the Twitter ground-truth dataset, a scraped Dark
//! Web forum, or a synthetic population.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::timestamp::Timestamp;

/// The posting history of a single (pseudonymous) user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserTrace {
    id: String,
    posts: Vec<Timestamp>,
}

impl UserTrace {
    /// Creates a trace; post times are sorted chronologically.
    pub fn new(id: impl Into<String>, mut posts: Vec<Timestamp>) -> UserTrace {
        posts.sort_unstable();
        UserTrace {
            id: id.into(),
            posts,
        }
    }

    /// The user's pseudonymous identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The post timestamps, in chronological order.
    pub fn posts(&self) -> &[Timestamp] {
        &self.posts
    }

    /// Number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Whether the user has no posts.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Appends a post, keeping chronological order.
    pub fn push(&mut self, ts: Timestamp) {
        match self.posts.last() {
            Some(&last) if ts < last => {
                let idx = self.posts.partition_point(|&p| p <= ts);
                self.posts.insert(idx, ts);
            }
            _ => self.posts.push(ts),
        }
    }

    /// A copy of the trace with every timestamp shifted by `secs` seconds.
    ///
    /// Used to undo a forum server's clock offset after calibration.
    #[must_use]
    pub fn shifted_secs(&self, secs: i64) -> UserTrace {
        UserTrace {
            id: self.id.clone(),
            posts: self.posts.iter().map(|&t| t + secs).collect(),
        }
    }

    /// The sub-trace with posts in `[from, to)`.
    #[must_use]
    pub fn between(&self, from: Timestamp, to: Timestamp) -> UserTrace {
        UserTrace {
            id: self.id.clone(),
            posts: self
                .posts
                .iter()
                .copied()
                .filter(|&t| t >= from && t < to)
                .collect(),
        }
    }

    /// The posts present in `self` but not in `baseline`, as a multiset
    /// difference: a timestamp appearing `n` times here and `m < n` times
    /// in the baseline is emitted `n − m` times.
    ///
    /// This is the exact "what arrived since the last crawl" delta the
    /// streaming pipeline ingests — duplicates are first-class because
    /// multiple posts within one second are real forum events, and a plain
    /// set difference would drop them. Both traces are already sorted, so
    /// the walk is a single two-pointer pass.
    #[must_use]
    pub fn delta_from(&self, baseline: &UserTrace) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let old = baseline.posts();
        let mut j = 0usize;
        for &t in &self.posts {
            if j < old.len() && old[j] <= t {
                if old[j] == t {
                    j += 1; // matched one baseline occurrence
                    continue;
                }
                // Baseline has a post we don't — skip past it.
                while j < old.len() && old[j] < t {
                    j += 1;
                }
                if j < old.len() && old[j] == t {
                    j += 1;
                    continue;
                }
            }
            out.push(t);
        }
        out
    }
}

impl fmt::Display for UserTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} posts)", self.id, self.posts.len())
    }
}

/// A collection of user traces — one forum dump or one region's dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: BTreeMap<String, UserTrace>,
}

impl TraceSet {
    /// An empty trace set.
    pub fn new() -> TraceSet {
        TraceSet::default()
    }

    /// Inserts a trace; merges posts when the user id already exists.
    pub fn insert(&mut self, trace: UserTrace) {
        match self.traces.get_mut(trace.id()) {
            Some(existing) => {
                for &t in trace.posts() {
                    existing.push(t);
                }
            }
            None => {
                self.traces.insert(trace.id().to_owned(), trace);
            }
        }
    }

    /// Records one post for the given user.
    pub fn record(&mut self, user: &str, ts: Timestamp) {
        self.traces
            .entry(user.to_owned())
            .or_insert_with(|| UserTrace::new(user, Vec::new()))
            .push(ts);
    }

    /// Looks up a user's trace.
    pub fn get(&self, id: &str) -> Option<&UserTrace> {
        self.traces.get(id)
    }

    /// Iterates over traces in user-id order.
    pub fn iter(&self) -> impl Iterator<Item = &UserTrace> {
        self.traces.values()
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether there are no users.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total number of posts across all users.
    pub fn total_posts(&self) -> usize {
        self.traces.values().map(UserTrace::len).sum()
    }

    /// Keeps only users with at least `min_posts` posts — the paper's
    /// *active user* filter (threshold 30 in §IV).
    #[must_use]
    pub fn filter_active(&self, min_posts: usize) -> TraceSet {
        TraceSet {
            traces: self
                .traces
                .iter()
                .filter(|(_, t)| t.len() >= min_posts)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// The `n` users with the most posts, most active first.
    pub fn most_active(&self, n: usize) -> Vec<&UserTrace> {
        let mut all: Vec<&UserTrace> = self.traces.values().collect();
        all.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.id().cmp(b.id())));
        all.truncate(n);
        all
    }

    /// A copy with every timestamp shifted by `secs` seconds.
    #[must_use]
    pub fn shifted_secs(&self, secs: i64) -> TraceSet {
        let mut out = TraceSet::new();
        for t in self.traces.values() {
            out.insert(t.shifted_secs(secs));
        }
        out
    }

    /// Per-user post deltas relative to `baseline` (typically an earlier
    /// crawl of the same forum), in user-id order: each entry is a user
    /// with at least one new post, paired with exactly the posts
    /// [`UserTrace::delta_from`] reports. Users absent from the baseline
    /// contribute their whole trace.
    ///
    /// Feeding every `(user, posts)` pair of this delta into a streaming
    /// ingester that already saw `baseline` reproduces `self` exactly.
    pub fn delta_from(&self, baseline: &TraceSet) -> Vec<(&str, Vec<Timestamp>)> {
        let mut out = Vec::new();
        for trace in self.traces.values() {
            let fresh = match baseline.get(trace.id()) {
                Some(old) => trace.delta_from(old),
                None => trace.posts().to_vec(),
            };
            if !fresh.is_empty() {
                out.push((trace.id(), fresh));
            }
        }
        out
    }
}

impl FromIterator<UserTrace> for TraceSet {
    fn from_iter<T: IntoIterator<Item = UserTrace>>(iter: T) -> TraceSet {
        let mut set = TraceSet::new();
        for t in iter {
            set.insert(t);
        }
        set
    }
}

impl<'a> IntoIterator for &'a TraceSet {
    type Item = &'a UserTrace;
    type IntoIter = std::collections::btree_map::Values<'a, String, UserTrace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn trace_sorts_posts() {
        let t = UserTrace::new("u", vec![ts(30), ts(10), ts(20)]);
        assert_eq!(t.posts(), &[ts(10), ts(20), ts(30)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn push_keeps_order() {
        let mut t = UserTrace::new("u", vec![ts(10), ts(30)]);
        t.push(ts(20));
        assert_eq!(t.posts(), &[ts(10), ts(20), ts(30)]);
        t.push(ts(40));
        assert_eq!(t.posts().last(), Some(&ts(40)));
        t.push(ts(5));
        assert_eq!(t.posts().first(), Some(&ts(5)));
    }

    #[test]
    fn shifted_secs_moves_everything() {
        let t = UserTrace::new("u", vec![ts(100), ts(200)]);
        let shifted = t.shifted_secs(-50);
        assert_eq!(shifted.posts(), &[ts(50), ts(150)]);
        assert_eq!(shifted.id(), "u");
    }

    #[test]
    fn between_is_half_open() {
        let t = UserTrace::new("u", vec![ts(10), ts(20), ts(30)]);
        let mid = t.between(ts(10), ts(30));
        assert_eq!(mid.posts(), &[ts(10), ts(20)]);
    }

    #[test]
    fn between_empty_range_and_out_of_range() {
        let t = UserTrace::new("u", vec![ts(10), ts(20), ts(30)]);
        // from == to: half-open range is empty.
        assert!(t.between(ts(20), ts(20)).is_empty());
        // Inverted range is empty, not a panic.
        assert!(t.between(ts(30), ts(10)).is_empty());
        // Entirely outside the trace.
        assert!(t.between(ts(100), ts(200)).is_empty());
        // Empty trace stays empty and keeps the id.
        let e = UserTrace::new("u", vec![]);
        let sub = e.between(ts(0), ts(100));
        assert!(sub.is_empty());
        assert_eq!(sub.id(), "u");
    }

    #[test]
    fn push_unsorted_sequence_ends_sorted() {
        let mut t = UserTrace::new("u", vec![]);
        for s in [50, 10, 40, 10, 30, 0, 50] {
            t.push(ts(s));
        }
        assert_eq!(
            t.posts(),
            &[ts(0), ts(10), ts(10), ts(30), ts(40), ts(50), ts(50)]
        );
    }

    #[test]
    fn push_duplicates_are_kept() {
        let mut t = UserTrace::new("u", vec![ts(10)]);
        t.push(ts(10));
        t.push(ts(10));
        assert_eq!(t.len(), 3);
        assert_eq!(t.posts(), &[ts(10), ts(10), ts(10)]);
        // between() sees every duplicate occurrence.
        assert_eq!(t.between(ts(10), ts(11)).len(), 3);
    }

    #[test]
    fn delta_from_is_a_multiset_difference() {
        let old = UserTrace::new("u", vec![ts(10), ts(10), ts(20)]);
        let new = UserTrace::new("u", vec![ts(10), ts(10), ts(10), ts(20), ts(30)]);
        // One extra ts(10) occurrence and the new ts(30).
        assert_eq!(new.delta_from(&old), vec![ts(10), ts(30)]);
        // Nothing new → empty delta.
        assert!(old.delta_from(&old).is_empty());
        // Against an empty baseline the delta is the whole trace.
        let empty = UserTrace::new("u", vec![]);
        assert_eq!(new.delta_from(&empty), new.posts().to_vec());
        // Baseline-only posts (a retracted crawl) are simply not emitted.
        assert!(empty.delta_from(&old).is_empty());
        // Baseline posts interleaved between new ones don't mask them.
        let o = UserTrace::new("u", vec![ts(15), ts(25)]);
        let n = UserTrace::new("u", vec![ts(10), ts(15), ts(20), ts(25), ts(30)]);
        assert_eq!(n.delta_from(&o), vec![ts(10), ts(20), ts(30)]);
    }

    #[test]
    fn traceset_delta_replays_into_equality() {
        let mut old = TraceSet::new();
        old.insert(UserTrace::new("a", vec![ts(1), ts(2)]));
        old.insert(UserTrace::new("b", vec![ts(5)]));
        let mut new = old.clone();
        new.record("a", ts(3));
        new.record("c", ts(7));
        new.record("c", ts(7)); // duplicate second
        let delta = new.delta_from(&old);
        assert_eq!(
            delta,
            vec![("a", vec![ts(3)]), ("c", vec![ts(7), ts(7)])],
            "id order, empty deltas skipped"
        );
        // Replaying the delta onto the baseline reproduces the new set.
        let mut replay = old.clone();
        for (user, posts) in &delta {
            for &p in posts {
                replay.record(user, p);
            }
        }
        assert_eq!(replay, new);
    }

    #[test]
    fn traceset_merges_duplicate_users() {
        let mut set = TraceSet::new();
        set.insert(UserTrace::new("a", vec![ts(1)]));
        set.insert(UserTrace::new("a", vec![ts(2)]));
        assert_eq!(set.len(), 1);
        assert_eq!(set.get("a").unwrap().len(), 2);
        assert_eq!(set.total_posts(), 2);
    }

    #[test]
    fn record_accumulates() {
        let mut set = TraceSet::new();
        set.record("x", ts(5));
        set.record("x", ts(3));
        assert_eq!(set.get("x").unwrap().posts(), &[ts(3), ts(5)]);
    }

    #[test]
    fn filter_active_threshold() {
        let mut set = TraceSet::new();
        set.insert(UserTrace::new("busy", (0..30).map(ts).collect()));
        set.insert(UserTrace::new("quiet", vec![ts(1)]));
        let active = set.filter_active(30);
        assert_eq!(active.len(), 1);
        assert!(active.get("busy").is_some());
    }

    #[test]
    fn most_active_orders_and_truncates() {
        let mut set = TraceSet::new();
        set.insert(UserTrace::new("a", (0..5).map(ts).collect()));
        set.insert(UserTrace::new("b", (0..10).map(ts).collect()));
        set.insert(UserTrace::new("c", (0..10).map(ts).collect()));
        let top = set.most_active(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id(), "b"); // ties break by id
        assert_eq!(top[1].id(), "c");
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let set: TraceSet = vec![
            UserTrace::new("a", vec![ts(1)]),
            UserTrace::new("b", vec![ts(2)]),
        ]
        .into_iter()
        .collect();
        let ids: Vec<&str> = (&set).into_iter().map(UserTrace::id).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn display() {
        let t = UserTrace::new("alice", vec![ts(1), ts(2)]);
        assert_eq!(t.to_string(), "alice (2 posts)");
    }

    #[test]
    fn traceset_serde_round_trip() {
        let mut set = TraceSet::new();
        set.insert(UserTrace::new("a", vec![ts(5), ts(1)]));
        set.insert(UserTrace::new("b", vec![ts(9)]));
        let json = serde_json::to_string(&set).unwrap();
        let back: TraceSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.get("a").unwrap().posts(), &[ts(1), ts(5)]);
    }

    #[test]
    fn shifted_set_preserves_structure() {
        let mut set = TraceSet::new();
        set.record("x", ts(100));
        set.record("y", ts(200));
        let shifted = set.shifted_secs(-100);
        assert_eq!(shifted.len(), 2);
        assert_eq!(shifted.get("x").unwrap().posts(), &[ts(0)]);
        assert_eq!(shifted.get("y").unwrap().posts(), &[ts(100)]);
        assert_eq!(shifted.total_posts(), set.total_posts());
    }
}
