//! Daylight-saving-time rules.
//!
//! §V.F of the paper rests on one observation: *northern* hemisphere regions
//! run DST roughly March→October while *southern* hemisphere regions run it
//! roughly October→February. These rules implement the real transition
//! calendars (nth/last weekday of a month at a local hour), which is what
//! the hemisphere classifier in `crowdtz-core` infers against.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::calendar::{CivilDateTime, Date, Month, Weekday};

/// Which occurrence of a weekday within a month a transition falls on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeekOfMonth {
    /// The n-th occurrence (1-based); e.g. `Nth(2)` = second.
    Nth(u8),
    /// The last occurrence in the month.
    Last,
}

/// A single DST transition rule: "the \<week\> \<weekday\> of \<month\>, at
/// \<local hour\>".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transition {
    month: Month,
    week: WeekOfMonth,
    weekday: Weekday,
    local_hour: u8,
}

impl Transition {
    /// Creates a transition rule.
    ///
    /// `local_hour` is the wall-clock hour (standard time) at which the
    /// switch happens and is clamped to `0..=23`.
    pub fn new(month: Month, week: WeekOfMonth, weekday: Weekday, local_hour: u8) -> Transition {
        Transition {
            month,
            week,
            weekday,
            local_hour: local_hour.min(23),
        }
    }

    /// The month of the transition.
    pub fn month(&self) -> Month {
        self.month
    }

    /// The concrete transition instant (in local standard time) for `year`.
    ///
    /// Months in which the requested occurrence does not exist (e.g. a 5th
    /// Sunday) fall back to the last occurrence.
    pub fn instant_in_year(&self, year: i32) -> CivilDateTime {
        let date = match self.week {
            WeekOfMonth::Nth(n) => Date::nth_weekday_of_month(year, self.month, self.weekday, n)
                .unwrap_or_else(|| Date::last_weekday_of_month(year, self.month, self.weekday)),
            WeekOfMonth::Last => Date::last_weekday_of_month(year, self.month, self.weekday),
        };
        CivilDateTime::from_date_time(date, self.local_hour, 0, 0).expect("hour clamped")
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.week {
            WeekOfMonth::Nth(n) => write!(
                f,
                "{}th {} of {} {:02}:00",
                n, self.weekday, self.month, self.local_hour
            ),
            WeekOfMonth::Last => write!(
                f,
                "last {} of {} {:02}:00",
                self.weekday, self.month, self.local_hour
            ),
        }
    }
}

/// A daylight-saving rule: the pair of yearly transitions plus the shift.
///
/// `start` is when clocks move *forward* by `shift_secs`; `end` is when they
/// move back. A northern rule has `start` in spring (Feb–June) and `end` in
/// autumn; a southern rule is the reverse, so its DST period *spans the new
/// year*.
///
/// ```
/// use crowdtz_time::{Date, DstRule};
///
/// let eu = DstRule::eu();
/// assert!(eu.is_dst_on(Date::new(2016, 7, 1)?));   // summer
/// assert!(!eu.is_dst_on(Date::new(2016, 1, 15)?)); // winter
///
/// let brazil = DstRule::brazil();
/// assert!(brazil.is_dst_on(Date::new(2016, 1, 15)?));  // austral summer
/// assert!(!brazil.is_dst_on(Date::new(2016, 7, 1)?));
/// # Ok::<(), crowdtz_time::TimeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DstRule {
    start: Transition,
    end: Transition,
    shift_secs: i32,
}

impl DstRule {
    /// Creates a DST rule with a custom shift (normally one hour).
    pub fn new(start: Transition, end: Transition, shift_secs: i32) -> DstRule {
        DstRule {
            start,
            end,
            shift_secs,
        }
    }

    /// The European Union rule: last Sunday of March 02:00 → last Sunday of
    /// October 03:00, +1 h.
    pub fn eu() -> DstRule {
        DstRule::new(
            Transition::new(Month::March, WeekOfMonth::Last, Weekday::Sunday, 2),
            Transition::new(Month::October, WeekOfMonth::Last, Weekday::Sunday, 3),
            3_600,
        )
    }

    /// The United States rule (post-2007): second Sunday of March 02:00 →
    /// first Sunday of November 02:00, +1 h.
    pub fn us() -> DstRule {
        DstRule::new(
            Transition::new(Month::March, WeekOfMonth::Nth(2), Weekday::Sunday, 2),
            Transition::new(Month::November, WeekOfMonth::Nth(1), Weekday::Sunday, 2),
            3_600,
        )
    }

    /// The Brazilian rule as in force in 2016 (southern): third Sunday of
    /// October 00:00 → third Sunday of February 00:00, +1 h.
    ///
    /// Only the southern, most populated states observed it — the paper
    /// relies on exactly this rule to place part of the Pedo Support
    /// Community crowd in Southern Brazil / Paraguay.
    pub fn brazil() -> DstRule {
        DstRule::new(
            Transition::new(Month::October, WeekOfMonth::Nth(3), Weekday::Sunday, 0),
            Transition::new(Month::February, WeekOfMonth::Nth(3), Weekday::Sunday, 0),
            3_600,
        )
    }

    /// The Paraguayan rule (southern): first Sunday of October 00:00 →
    /// fourth Sunday of March 00:00, +1 h.
    pub fn paraguay() -> DstRule {
        DstRule::new(
            Transition::new(Month::October, WeekOfMonth::Nth(1), Weekday::Sunday, 0),
            Transition::new(Month::March, WeekOfMonth::Nth(4), Weekday::Sunday, 0),
            3_600,
        )
    }

    /// The Australian (NSW/Victoria) rule (southern): first Sunday of
    /// October 02:00 → first Sunday of April 03:00, +1 h.
    pub fn australia_nsw() -> DstRule {
        DstRule::new(
            Transition::new(Month::October, WeekOfMonth::Nth(1), Weekday::Sunday, 2),
            Transition::new(Month::April, WeekOfMonth::Nth(1), Weekday::Sunday, 3),
            3_600,
        )
    }

    /// New Zealand (and the Chatham Islands, which share its dates):
    /// last Sunday of September to the first Sunday of April — southern.
    pub fn new_zealand() -> DstRule {
        DstRule::new(
            Transition::new(Month::September, WeekOfMonth::Last, Weekday::Sunday, 2),
            Transition::new(Month::April, WeekOfMonth::Nth(1), Weekday::Sunday, 3),
            3_600,
        )
    }

    /// The shift applied while DST is in force, in seconds.
    pub fn shift_secs(&self) -> i32 {
        self.shift_secs
    }

    /// The spring-forward transition.
    pub fn start(&self) -> Transition {
        self.start
    }

    /// The fall-back transition.
    pub fn end(&self) -> Transition {
        self.end
    }

    /// Whether this rule belongs to the southern hemisphere (its DST period
    /// spans the new year).
    pub fn is_southern(&self) -> bool {
        self.start.month() > self.end.month()
    }

    /// Whether DST is in force at the given local (standard-time) moment.
    pub fn is_dst_at(&self, local_standard: CivilDateTime) -> bool {
        let year = local_standard.date().year();
        let start = self.start.instant_in_year(year);
        let end = self.end.instant_in_year(year);
        if !self.is_southern() {
            local_standard >= start && local_standard < end
        } else {
            // Southern: in force from `start` to year end, and from year
            // start to `end`.
            local_standard >= start || local_standard < end
        }
    }

    /// Whether DST is in force for (the noon of) the given local date.
    pub fn is_dst_on(&self, date: Date) -> bool {
        let noon = CivilDateTime::from_date_time(date, 12, 0, 0).expect("noon valid");
        self.is_dst_at(noon)
    }
}

impl fmt::Display for DstRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DST +{}s from ({}) to ({})",
            self.shift_secs, self.start, self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day).unwrap()
    }

    #[test]
    fn eu_transitions_2016() {
        let eu = DstRule::eu();
        assert!(!eu.is_dst_on(d(2016, 3, 26))); // day before last Sunday
        assert!(eu.is_dst_on(d(2016, 3, 27))); // transition day (noon)
        assert!(eu.is_dst_on(d(2016, 10, 29)));
        assert!(!eu.is_dst_on(d(2016, 10, 30))); // noon after 03:00 switch
        assert!(!eu.is_dst_on(d(2016, 12, 25)));
    }

    #[test]
    fn eu_transition_hour_boundary() {
        let eu = DstRule::eu();
        let before = CivilDateTime::new(2016, 3, 27, 1, 59, 59).unwrap();
        let after = CivilDateTime::new(2016, 3, 27, 2, 0, 0).unwrap();
        assert!(!eu.is_dst_at(before));
        assert!(eu.is_dst_at(after));
    }

    #[test]
    fn us_transitions_2016() {
        let us = DstRule::us();
        assert!(!us.is_dst_on(d(2016, 3, 12)));
        assert!(us.is_dst_on(d(2016, 3, 13))); // second Sunday of March
        assert!(us.is_dst_on(d(2016, 11, 5)));
        assert!(!us.is_dst_on(d(2016, 11, 6))); // first Sunday of November
    }

    #[test]
    fn brazil_is_southern_and_spans_new_year() {
        let br = DstRule::brazil();
        assert!(br.is_southern());
        assert!(br.is_dst_on(d(2016, 1, 10))); // austral summer
        assert!(br.is_dst_on(d(2016, 12, 25)));
        assert!(!br.is_dst_on(d(2016, 6, 15))); // austral winter
                                                // 2016: starts 3rd Sunday of October = Oct 16.
        assert!(!br.is_dst_on(d(2016, 10, 15)));
        assert!(br.is_dst_on(d(2016, 10, 16)));
        // Ends 3rd Sunday of February = Feb 21.
        assert!(br.is_dst_on(d(2016, 2, 20)));
        assert!(!br.is_dst_on(d(2016, 2, 21)));
    }

    #[test]
    fn australia_is_southern() {
        let au = DstRule::australia_nsw();
        assert!(au.is_southern());
        assert!(au.is_dst_on(d(2016, 1, 15)));
        assert!(!au.is_dst_on(d(2016, 7, 15)));
    }

    #[test]
    fn northern_rules_are_not_southern() {
        assert!(!DstRule::eu().is_southern());
        assert!(!DstRule::us().is_southern());
    }

    #[test]
    fn nth_fallback_never_panics() {
        // A rule asking for the 5th Sunday falls back to the last.
        let t = Transition::new(Month::February, WeekOfMonth::Nth(5), Weekday::Sunday, 2);
        let inst = t.instant_in_year(2015); // Feb 2015 has only 4 Sundays
        assert_eq!(
            inst.date(),
            Date::last_weekday_of_month(2015, Month::February, Weekday::Sunday)
        );
    }

    #[test]
    fn display_is_readable() {
        let s = DstRule::eu().to_string();
        assert!(s.contains("March"), "{s}");
        assert!(s.contains("October"), "{s}");
    }

    #[test]
    fn spring_forward_skipped_hour_is_already_dst() {
        // EU clocks jump 02:00 → 03:00 on 2016-03-27: the 02:xx wall hour
        // does not exist. The rule is indexed by local *standard* time,
        // where that hour does exist and falls at/after the transition
        // instant — so the whole skipped hour already reports DST.
        let eu = DstRule::eu();
        assert!(!eu.is_dst_at(CivilDateTime::new(2016, 3, 27, 1, 59, 59).unwrap()));
        assert!(eu.is_dst_at(CivilDateTime::new(2016, 3, 27, 2, 0, 0).unwrap()));
        assert!(eu.is_dst_at(CivilDateTime::new(2016, 3, 27, 2, 30, 0).unwrap()));
        assert!(eu.is_dst_at(CivilDateTime::new(2016, 3, 27, 2, 59, 59).unwrap()));
        assert!(eu.is_dst_at(CivilDateTime::new(2016, 3, 27, 3, 0, 0).unwrap()));
    }

    #[test]
    fn fall_back_repeated_hour_has_one_answer_in_standard_time() {
        // EU falls back on 2016-10-30: the 02:xx wall hour occurs twice.
        // Standard time is monotonic, so each instant classifies exactly
        // once — DST right up to the boundary, standard from it on.
        let eu = DstRule::eu();
        assert!(eu.is_dst_at(CivilDateTime::new(2016, 10, 30, 2, 59, 59).unwrap()));
        assert!(!eu.is_dst_at(CivilDateTime::new(2016, 10, 30, 3, 0, 0).unwrap()));
        // Same shape for the US rule (2016-11-06 at 02:00).
        let us = DstRule::us();
        assert!(us.is_dst_at(CivilDateTime::new(2016, 11, 6, 1, 59, 59).unwrap()));
        assert!(!us.is_dst_at(CivilDateTime::new(2016, 11, 6, 2, 0, 0).unwrap()));
    }

    #[test]
    fn southern_schedule_spans_new_year_at_exact_boundaries() {
        let py = DstRule::paraguay();
        assert!(py.is_southern());
        // 2016: starts first Sunday of October = Oct 2, 00:00.
        assert!(!py.is_dst_at(CivilDateTime::new(2016, 10, 1, 23, 59, 59).unwrap()));
        assert!(py.is_dst_at(CivilDateTime::new(2016, 10, 2, 0, 0, 0).unwrap()));
        // Ends fourth Sunday of March = Mar 27, 00:00.
        assert!(py.is_dst_at(CivilDateTime::new(2016, 3, 26, 23, 59, 59).unwrap()));
        assert!(!py.is_dst_at(CivilDateTime::new(2016, 3, 27, 0, 0, 0).unwrap()));
        // The DST period runs straight through the new year.
        assert!(py.is_dst_at(CivilDateTime::new(2016, 12, 31, 23, 59, 59).unwrap()));
        assert!(py.is_dst_at(CivilDateTime::new(2016, 1, 1, 0, 0, 0).unwrap()));
    }

    #[test]
    fn shift_and_accessors() {
        let eu = DstRule::eu();
        assert_eq!(eu.shift_secs(), 3_600);
        assert_eq!(eu.start().month(), Month::March);
        assert_eq!(eu.end().month(), Month::October);
    }
}
