//! Civil-time substrate for the crowdtz project.
//!
//! The geolocation method of *Time-Zone Geolocation of Crowds in the Dark
//! Web* (ICDCS 2018) is built entirely on wall-clock arithmetic: post
//! timestamps are converted to local hours of the day under candidate time
//! zones, daylight-saving time must be normalized when building region
//! profiles (§IV of the paper), and the hemisphere-detection technique
//! (§V.F) *is* an inference about DST rules. Because that arithmetic is part
//! of the reproduced method, this crate implements it from scratch instead
//! of delegating to a calendar library.
//!
//! # Contents
//!
//! * [`Timestamp`] — an instant in UTC, seconds since the Unix epoch.
//! * [`Date`], [`CivilDateTime`] — proleptic-Gregorian calendar types.
//! * [`TzOffset`] — a UTC offset at quarter-hour granularity.
//! * [`DstRule`], [`Transition`] — daylight-saving rules for the northern
//!   and southern hemispheres.
//! * [`Zone`] — a standard offset plus an optional DST rule; converts
//!   instants to local civil time.
//! * [`Region`], [`RegionDb`] — the ground-truth regions used by the paper
//!   (Table I) plus extras, with population weights, hemispheres, and
//!   holiday calendars.
//!
//! # Example
//!
//! ```
//! use crowdtz_time::{CivilDateTime, Timestamp, Zone, TzOffset};
//!
//! // Germany: UTC+1 standard time with EU (northern) DST.
//! let berlin = Zone::eu(TzOffset::from_hours(1)?);
//! // 2016-07-15 12:00:00 UTC is 14:00 in Berlin (CEST, UTC+2).
//! let ts = Timestamp::from_civil_utc(CivilDateTime::new(2016, 7, 15, 12, 0, 0)?);
//! assert_eq!(berlin.to_local(ts).hour(), 14);
//! # Ok::<(), crowdtz_time::TimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod calendar;
mod cities;
mod dst;
mod error;
mod offset;
mod region;
mod timestamp;
mod trace;
mod zone;

pub use calendar::{CivilDateTime, Date, Month, Weekday};
pub use cities::{zone_cities, zone_label};
pub use dst::{DstRule, Transition, WeekOfMonth};
pub use error::TimeError;
pub use offset::TzOffset;
pub use region::{HolidayCalendar, Region, RegionDb, RegionId};
pub use timestamp::Timestamp;
pub use trace::{TraceSet, UserTrace};
pub use zone::{Hemisphere, Zone};

/// Number of seconds in one hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Number of seconds in one civil day.
pub const SECS_PER_DAY: i64 = 86_400;
/// Number of hours in one civil day; the dimension of activity profiles.
pub const HOURS_PER_DAY: usize = 24;
