//! Ground-truth regions: the 14 countries/states of the paper's Table I,
//! plus extra regions needed by the Dark Web experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::calendar::Date;
use crate::dst::DstRule;
use crate::error::TimeError;
use crate::offset::TzOffset;
use crate::zone::{Hemisphere, Zone};

/// Identifier of a region in a [`RegionDb`]; a lowercase slug such as
/// `"germany"` or `"new-south-wales"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(String);

impl RegionId {
    /// Creates an id from a slug; the slug is lowercased.
    pub fn new(slug: impl Into<String>) -> RegionId {
        RegionId(slug.into().to_lowercase())
    }

    /// The slug string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RegionId {
    fn from(s: &str) -> RegionId {
        RegionId::new(s)
    }
}

/// A yearly calendar of low-activity periods (holidays).
///
/// §IV of the paper: *"we have filtered out periods of particularly low
/// activity, like holidays"*. The calendar is a set of inclusive
/// month/day ranges that repeat every year; ranges may wrap the new year
/// (e.g. Dec 23 – Jan 2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HolidayCalendar {
    /// Inclusive ranges as ((start month, start day), (end month, end day)).
    ranges: Vec<((u8, u8), (u8, u8))>,
}

impl HolidayCalendar {
    /// An empty calendar (no holidays filtered).
    pub fn none() -> HolidayCalendar {
        HolidayCalendar::default()
    }

    /// A typical "western" calendar: winter holidays (Dec 23 – Jan 2) and a
    /// summer national break (Aug 10 – Aug 20).
    pub fn western() -> HolidayCalendar {
        HolidayCalendar {
            ranges: vec![((12, 23), (1, 2)), ((8, 10), (8, 20))],
        }
    }

    /// Adds an inclusive month/day range (may wrap the new year).
    #[must_use]
    pub fn with_range(mut self, start: (u8, u8), end: (u8, u8)) -> HolidayCalendar {
        self.ranges.push((start, end));
        self
    }

    /// Whether the given date falls inside a holiday period.
    ///
    /// ```
    /// use crowdtz_time::{Date, HolidayCalendar};
    /// let cal = HolidayCalendar::western();
    /// assert!(cal.contains(Date::new(2016, 12, 25)?));
    /// assert!(cal.contains(Date::new(2016, 1, 1)?));
    /// assert!(!cal.contains(Date::new(2016, 3, 15)?));
    /// # Ok::<(), crowdtz_time::TimeError>(())
    /// ```
    pub fn contains(&self, date: Date) -> bool {
        let md = (date.month_number(), date.day());
        self.ranges.iter().any(|&(start, end)| {
            if start <= end {
                md >= start && md <= end
            } else {
                // Wrapping range, e.g. (12,23) ..= (1,2).
                md >= start || md <= end
            }
        })
    }

    /// Number of configured ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the calendar has no ranges.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// A ground-truth region: a place with a known time zone, DST calendar,
/// hemisphere, and (for the paper's Table I regions) a Twitter active-user
/// count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    id: RegionId,
    name: String,
    zone: Zone,
    twitter_active_users: Option<u32>,
    holidays: HolidayCalendar,
}

impl Region {
    /// Creates a region.
    pub fn new(
        id: impl Into<RegionId>,
        name: impl Into<String>,
        zone: Zone,
        twitter_active_users: Option<u32>,
        holidays: HolidayCalendar,
    ) -> Region {
        Region {
            id: id.into(),
            name: name.into(),
            zone,
            twitter_active_users,
            holidays,
        }
    }

    /// The region identifier.
    pub fn id(&self) -> &RegionId {
        &self.id
    }

    /// Human-readable name, as printed in Table I.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region's time zone (standard offset + DST rule).
    pub fn zone(&self) -> Zone {
        self.zone
    }

    /// The standard (winter) UTC offset.
    pub fn standard_offset(&self) -> TzOffset {
        self.zone.standard_offset()
    }

    /// The hemisphere implied by the DST rule.
    pub fn hemisphere(&self) -> Hemisphere {
        self.zone.hemisphere()
    }

    /// Number of active Twitter users in the paper's Table I, if this is
    /// one of the 14 ground-truth regions.
    pub fn twitter_active_users(&self) -> Option<u32> {
        self.twitter_active_users
    }

    /// The holiday calendar used when polishing activity traces.
    pub fn holidays(&self) -> &HolidayCalendar {
        &self.holidays
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.zone)
    }
}

/// A database of [`Region`]s with lookup by id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionDb {
    regions: Vec<Region>,
}

impl RegionDb {
    /// An empty database.
    pub fn new() -> RegionDb {
        RegionDb::default()
    }

    /// The 14 ground-truth regions of the paper's Table I, with their 2016
    /// time zones, DST rules, hemispheres, and active-user counts.
    ///
    /// ```
    /// use crowdtz_time::RegionDb;
    /// let db = RegionDb::table1();
    /// assert_eq!(db.len(), 14);
    /// assert_eq!(db.get(&"japan".into()).unwrap().standard_offset().whole_hours(), 9);
    /// ```
    pub fn table1() -> RegionDb {
        let h = |off: i32| TzOffset::from_hours(off).expect("static offsets valid");
        let west = HolidayCalendar::western;
        let mut db = RegionDb::new();
        for region in [
            Region::new(
                "brazil",
                "Brazil",
                Zone::with_dst(h(-3), DstRule::brazil()),
                Some(3_763),
                HolidayCalendar::none()
                    .with_range((12, 23), (1, 2))
                    .with_range((2, 5), (2, 10)),
            ),
            Region::new(
                "california",
                "California",
                Zone::us(h(-8)),
                Some(2_868),
                west(),
            ),
            Region::new("finland", "Finland", Zone::eu(h(2)), Some(73), west()),
            Region::new("france", "France", Zone::eu(h(1)), Some(2_222), west()),
            Region::new("germany", "Germany", Zone::eu(h(1)), Some(470), west()),
            Region::new("illinois", "Illinois", Zone::us(h(-6)), Some(794), west()),
            Region::new("italy", "Italy", Zone::eu(h(1)), Some(734), west()),
            Region::new(
                "japan",
                "Japan",
                Zone::fixed(h(9)),
                Some(3_745),
                HolidayCalendar::none()
                    .with_range((12, 29), (1, 3))
                    .with_range((4, 29), (5, 5)),
            ),
            Region::new(
                "malaysia",
                "Malaysia",
                Zone::fixed(h(8)),
                Some(1_714),
                HolidayCalendar::none(),
            ),
            Region::new(
                "new-south-wales",
                "New South Wales",
                Zone::with_dst(h(10), DstRule::australia_nsw()),
                Some(151),
                HolidayCalendar::none().with_range((12, 23), (1, 2)),
            ),
            Region::new("new-york", "New York", Zone::us(h(-5)), Some(1_417), west()),
            Region::new("poland", "Poland", Zone::eu(h(1)), Some(375), west()),
            // Turkey moved to permanent UTC+3 in September 2016; the paper's
            // dataset spans 2016, so we model the year-end state.
            Region::new(
                "turkey",
                "Turkey",
                Zone::fixed(h(3)),
                Some(1_019),
                HolidayCalendar::none(),
            ),
            Region::new(
                "united-kingdom",
                "United Kingdom",
                Zone::eu(h(0)),
                Some(3_231),
                west(),
            ),
        ] {
            db.insert(region);
        }
        db
    }

    /// Table I plus the extra regions needed by the Dark Web experiments
    /// (§V): Russia, Ukraine, the Gulf (UTC+4), Paraguay, US Pacific &
    /// Mountain, and Western/Central Europe synonyms.
    pub fn extended() -> RegionDb {
        let h = |off: i32| TzOffset::from_hours(off).expect("static offsets valid");
        let mut db = RegionDb::table1();
        for region in [
            // Russia abolished DST in 2014; Moscow is fixed UTC+3.
            Region::new(
                "russia-moscow",
                "Russia (Moscow)",
                Zone::fixed(h(3)),
                None,
                HolidayCalendar::none().with_range((12, 31), (1, 8)),
            ),
            Region::new(
                "russia-samara",
                "Russia (Samara)",
                Zone::fixed(h(4)),
                None,
                HolidayCalendar::none().with_range((12, 31), (1, 8)),
            ),
            Region::new(
                "ukraine",
                "Ukraine",
                Zone::eu(h(2)),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "uae",
                "United Arab Emirates",
                Zone::fixed(h(4)),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "georgia-tbilisi",
                "Georgia (Tbilisi)",
                Zone::fixed(h(4)),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "paraguay",
                "Paraguay",
                Zone::with_dst(h(-4), DstRule::paraguay()),
                None,
                HolidayCalendar::none().with_range((12, 24), (1, 1)),
            ),
            Region::new(
                "brazil-south",
                "Southern Brazil",
                Zone::with_dst(h(-3), DstRule::brazil()),
                None,
                HolidayCalendar::none().with_range((12, 23), (1, 2)),
            ),
            Region::new(
                "us-pacific",
                "US Pacific",
                Zone::us(h(-8)),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "us-mountain",
                "US Mountain",
                Zone::us(h(-7)),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "us-central",
                "US Central",
                Zone::us(h(-6)),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "us-eastern",
                "US Eastern",
                Zone::us(h(-5)),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "mexico-city",
                "Mexico City",
                Zone::us(h(-6)),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "spain",
                "Spain",
                Zone::eu(h(1)),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "netherlands",
                "Netherlands",
                Zone::eu(h(1)),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "nigeria",
                "Nigeria",
                Zone::fixed(h(1)),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "china",
                "China",
                Zone::fixed(h(8)),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "india",
                "India",
                Zone::fixed(TzOffset::from_minutes(330).expect("IST valid")),
                None,
                HolidayCalendar::none(),
            ),
            Region::new(
                "sri-lanka",
                "Sri Lanka",
                Zone::fixed(TzOffset::from_minutes(330).expect("+5:30 valid")),
                None,
                HolidayCalendar::none(),
            ),
            // South Australia: a half-hour base offset *with* DST — it
            // shares NSW's first-Sunday-of-April/October transitions.
            Region::new(
                "australia-central",
                "Australia (Central)",
                Zone::with_dst(
                    TzOffset::from_minutes(570).expect("+9:30 valid"),
                    DstRule::australia_nsw(),
                ),
                None,
                HolidayCalendar::none().with_range((12, 23), (1, 2)),
            ),
            Region::new(
                "newfoundland",
                "Newfoundland",
                Zone::us(TzOffset::from_minutes(-210).expect("-3:30 valid")),
                None,
                HolidayCalendar::western(),
            ),
            Region::new(
                "argentina",
                "Argentina",
                Zone::fixed(h(-3)),
                None,
                HolidayCalendar::none(),
            ),
            // Nepal: the only +X:45 zone without DST. Unrepresentable on
            // the hourly (and half-hour) placement grid — the fixture for
            // quarter-hour resolution.
            Region::new(
                "nepal",
                "Nepal",
                Zone::fixed(TzOffset::from_minutes(345).expect("+5:45 valid")),
                None,
                HolidayCalendar::none(),
            ),
            // Chatham Islands: +12:45 standard, +13:45 during NZ summer —
            // a quarter-hour offset *with* DST.
            Region::new(
                "chatham",
                "Chatham Islands",
                Zone::with_dst(
                    TzOffset::from_minutes(765).expect("+12:45 valid"),
                    DstRule::new_zealand(),
                ),
                None,
                HolidayCalendar::none().with_range((12, 23), (1, 2)),
            ),
        ] {
            db.insert(region);
        }
        db
    }

    /// Inserts (or replaces, by id) a region.
    pub fn insert(&mut self, region: Region) {
        if let Some(existing) = self.regions.iter_mut().find(|r| r.id == region.id) {
            *existing = region;
        } else {
            self.regions.push(region);
        }
    }

    /// Looks up a region by id.
    pub fn get(&self, id: &RegionId) -> Option<&Region> {
        self.regions.iter().find(|r| &r.id == id)
    }

    /// Looks up a region by id, returning an error with the missing slug.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::UnknownRegion`] if absent.
    pub fn require(&self, id: &RegionId) -> Result<&Region, TimeError> {
        self.get(id).ok_or_else(|| TimeError::UnknownRegion {
            id: id.as_str().to_owned(),
        })
    }

    /// Iterates over all regions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

impl<'a> IntoIterator for &'a RegionDb {
    type Item = &'a Region;
    type IntoIter = std::slice::Iter<'a, Region>;

    fn into_iter(self) -> Self::IntoIter {
        self.regions.iter()
    }
}

impl FromIterator<Region> for RegionDb {
    fn from_iter<T: IntoIterator<Item = Region>>(iter: T) -> RegionDb {
        let mut db = RegionDb::new();
        for r in iter {
            db.insert(r);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let db = RegionDb::table1();
        assert_eq!(db.len(), 14);
        let total: u32 = db.iter().filter_map(Region::twitter_active_users).sum();
        // Sum of Table I counts.
        assert_eq!(total, 22_576);
        let germany = db.get(&"germany".into()).unwrap();
        assert_eq!(germany.twitter_active_users(), Some(470));
        assert_eq!(germany.standard_offset().whole_hours(), 1);
        assert_eq!(germany.hemisphere(), Hemisphere::Northern);
    }

    #[test]
    fn hemispheres_match_geography() {
        let db = RegionDb::table1();
        assert_eq!(
            db.get(&"brazil".into()).unwrap().hemisphere(),
            Hemisphere::Southern
        );
        assert_eq!(
            db.get(&"new-south-wales".into()).unwrap().hemisphere(),
            Hemisphere::Southern
        );
        assert_eq!(
            db.get(&"japan".into()).unwrap().hemisphere(),
            Hemisphere::Unknown
        );
        assert_eq!(
            db.get(&"malaysia".into()).unwrap().hemisphere(),
            Hemisphere::Unknown
        );
        assert_eq!(
            db.get(&"france".into()).unwrap().hemisphere(),
            Hemisphere::Northern
        );
    }

    #[test]
    fn extended_has_dark_web_regions() {
        let db = RegionDb::extended();
        for id in [
            "russia-moscow",
            "paraguay",
            "uae",
            "us-pacific",
            "brazil-south",
        ] {
            assert!(db.get(&id.into()).is_some(), "missing {id}");
        }
        assert!(db.len() > 14);
        // Moscow has no DST since 2014.
        assert_eq!(
            db.get(&"russia-moscow".into()).unwrap().hemisphere(),
            Hemisphere::Unknown
        );
        assert_eq!(
            db.get(&"paraguay".into()).unwrap().hemisphere(),
            Hemisphere::Southern
        );
    }

    #[test]
    fn extended_covers_half_hour_offsets() {
        let db = RegionDb::extended();
        let offset_hours = |id: &str| {
            db.get(&id.into())
                .unwrap_or_else(|| panic!("missing {id}"))
                .standard_offset()
                .hours()
        };
        assert!((offset_hours("india") - 5.5).abs() < 1e-12);
        assert!((offset_hours("sri-lanka") - 5.5).abs() < 1e-12);
        assert!((offset_hours("australia-central") - 9.5).abs() < 1e-12);
        assert!((offset_hours("newfoundland") + 3.5).abs() < 1e-12);
        // Central Australia observes DST (southern-hemisphere dates),
        // Newfoundland observes DST (US dates); India and Sri Lanka don't.
        assert_eq!(
            db.get(&"australia-central".into()).unwrap().hemisphere(),
            Hemisphere::Southern
        );
        assert_eq!(
            db.get(&"newfoundland".into()).unwrap().hemisphere(),
            Hemisphere::Northern
        );
        assert!(db.get(&"india".into()).unwrap().zone().dst_rule().is_none());
    }

    #[test]
    fn insert_replaces_by_id() {
        let mut db = RegionDb::new();
        let z = Zone::fixed(TzOffset::UTC);
        db.insert(Region::new("x", "X", z, None, HolidayCalendar::none()));
        db.insert(Region::new("x", "X2", z, Some(5), HolidayCalendar::none()));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(&"x".into()).unwrap().name(), "X2");
    }

    #[test]
    fn require_reports_slug() {
        let db = RegionDb::table1();
        let err = db.require(&"atlantis".into()).unwrap_err();
        assert!(err.to_string().contains("atlantis"));
    }

    #[test]
    fn region_id_is_lowercased() {
        assert_eq!(RegionId::new("Germany").as_str(), "germany");
    }

    #[test]
    fn holiday_calendar_wrapping() {
        let cal = HolidayCalendar::none().with_range((12, 23), (1, 2));
        assert!(cal.contains(Date::new(2016, 12, 31).unwrap()));
        assert!(cal.contains(Date::new(2016, 1, 1).unwrap()));
        assert!(!cal.contains(Date::new(2016, 1, 3).unwrap()));
        assert!(!cal.contains(Date::new(2016, 12, 22).unwrap()));
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        assert!(HolidayCalendar::none().is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let z = Zone::fixed(TzOffset::UTC);
        let db: RegionDb = vec![
            Region::new("a", "A", z, None, HolidayCalendar::none()),
            Region::new("b", "B", z, None, HolidayCalendar::none()),
        ]
        .into_iter()
        .collect();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn display() {
        let db = RegionDb::table1();
        let s = db.get(&"germany".into()).unwrap().to_string();
        assert!(s.contains("Germany"));
        assert!(s.contains("UTC+1"));
    }
}
