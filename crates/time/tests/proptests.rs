//! Property-based tests for calendar and zone arithmetic.

use crowdtz_time::{CivilDateTime, Date, Timestamp, TzOffset, Zone, SECS_PER_DAY};
use proptest::prelude::*;

proptest! {
    /// Converting days → date → days is the identity over a wide range.
    #[test]
    fn date_day_count_round_trip(days in -1_000_000i64..1_000_000) {
        let date = Date::from_days_since_epoch(days).unwrap();
        prop_assert_eq!(date.days_since_epoch(), days);
    }

    /// Constructing a date from components and reading them back agrees.
    #[test]
    fn date_component_round_trip(days in -500_000i64..500_000) {
        let date = Date::from_days_since_epoch(days).unwrap();
        let rebuilt = Date::new(date.year(), date.month_number(), date.day()).unwrap();
        prop_assert_eq!(rebuilt, date);
    }

    /// Epoch seconds → civil UTC → epoch seconds is the identity.
    #[test]
    fn civil_seconds_round_trip(secs in -50_000_000_000i64..50_000_000_000) {
        let civil = CivilDateTime::from_seconds_since_epoch_utc(secs).unwrap();
        prop_assert_eq!(civil.seconds_since_epoch_as_utc(), secs);
    }

    /// Weekdays advance cyclically: (d+1).weekday follows d.weekday.
    #[test]
    fn weekday_cycle(days in -100_000i64..100_000) {
        let a = Date::from_days_since_epoch(days).unwrap().weekday();
        let b = Date::from_days_since_epoch(days + 1).unwrap().weekday();
        prop_assert_eq!((a.index_from_monday() + 1) % 7, b.index_from_monday());
    }

    /// Fixed-offset local conversion shifts the clock by exactly the offset.
    #[test]
    fn fixed_offset_shifts_clock(
        secs in 0i64..2_000_000_000,
        hours in -12i32..=12,
    ) {
        let ts = Timestamp::from_secs(secs);
        let off = TzOffset::from_hours(hours).unwrap();
        let local = ts.to_civil_offset(off).unwrap();
        let utc = ts.to_civil_utc().unwrap();
        let delta = local.seconds_since_epoch_as_utc() - utc.seconds_since_epoch_as_utc();
        prop_assert_eq!(delta, i64::from(off.seconds()));
    }

    /// `hour_in_offset` equals the hour of the civil conversion.
    #[test]
    fn hour_in_offset_consistent(
        secs in -2_000_000_000i64..2_000_000_000,
        quarter in -48i32..=48,
    ) {
        let ts = Timestamp::from_secs(secs);
        let off = TzOffset::from_minutes(quarter * 15).unwrap();
        prop_assert_eq!(ts.hour_in_offset(off), ts.to_civil_offset(off).unwrap().hour());
    }

    /// A DST zone's offset differs from standard by 0 or the DST shift.
    #[test]
    fn dst_offset_is_standard_or_shifted(
        day in 16_000i64..18_000, // 2013–2019
        hour in 0i64..24,
        std_hours in -10i32..=10,
    ) {
        let ts = Timestamp::from_secs(day * SECS_PER_DAY + hour * 3_600);
        let standard = TzOffset::from_hours(std_hours).unwrap();
        for zone in [Zone::eu(standard), Zone::us(standard)] {
            let eff = zone.offset_at(ts).seconds() - standard.seconds();
            prop_assert!(eff == 0 || eff == 3_600, "unexpected shift {eff}");
        }
    }

    /// from_local inverts to_local away from transition ambiguity.
    #[test]
    fn zone_local_round_trip(
        day in 16_100i64..17_800,
        secs_in_day in 0i64..SECS_PER_DAY,
    ) {
        let ts = Timestamp::from_secs(day * SECS_PER_DAY + secs_in_day);
        let zone = Zone::eu(TzOffset::from_hours(1).unwrap());
        let local = zone.to_local(ts);
        let back = zone.from_local(local).unwrap();
        // Identity except within the 1-hour ambiguous window at fall-back.
        let diff = (back - ts).abs();
        prop_assert!(diff == 0 || diff == 3_600, "diff {diff}");
    }

    /// Canonical zone index is a bijection on whole-hour offsets −11..=12.
    #[test]
    fn canonical_index_bijection(h in -11i32..=12) {
        let off = TzOffset::from_hours(h).unwrap();
        let idx = off.canonical_index();
        prop_assert_eq!(TzOffset::canonical_zones()[idx], off);
    }
}
