//! Deterministic fault injection for the simulated Tor transport.
//!
//! Real crawls of hidden services run for weeks over a medium that fails
//! constantly: circuits collapse, relays fall out of the consensus,
//! requests time out, and responses arrive truncated or corrupted. The
//! paper's measurement campaign (§IV) survived all of that; for the
//! reproduction to make the same robustness claims, the transport has to
//! be able to produce the same weather on demand.
//!
//! A [`FaultPlan`] is a seeded schedule of per-request faults. Every
//! round-trip on an [`AnonymousChannel`](crate::AnonymousChannel) whose
//! network carries a plan consults it once; at most one fault fires per
//! request, drawn from the configured [`FaultRates`]. The plan is
//! deterministic in its seed, so any chaotic run — including the exact
//! sequence of collapses and corrupted bytes — replays bit-for-bit.

use std::collections::VecDeque;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The circuit pair is torn down; the channel is unusable until the
    /// client rebuilds it.
    CircuitCollapse,
    /// A relay on the client circuit leaves the consensus, invalidating
    /// the standing circuit (rebuild required).
    RelayChurn,
    /// The request is dropped on the floor; the client gives up after a
    /// timeout. The channel itself survives.
    Timeout,
    /// The response arrives, but cut short at an arbitrary byte.
    TruncateResponse,
    /// The response arrives with random bytes flipped.
    CorruptResponse,
    /// The service fails to answer this one request (e.g. its intro point
    /// was momentarily overloaded); later requests may succeed.
    ServiceHiccup,
}

impl Fault {
    /// All fault kinds, in a fixed order (used for counters and sweeps).
    pub const ALL: [Fault; 6] = [
        Fault::CircuitCollapse,
        Fault::RelayChurn,
        Fault::Timeout,
        Fault::TruncateResponse,
        Fault::CorruptResponse,
        Fault::ServiceHiccup,
    ];

    fn index(self) -> usize {
        match self {
            Fault::CircuitCollapse => 0,
            Fault::RelayChurn => 1,
            Fault::Timeout => 2,
            Fault::TruncateResponse => 3,
            Fault::CorruptResponse => 4,
            Fault::ServiceHiccup => 5,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Fault::CircuitCollapse => "circuit-collapse",
            Fault::RelayChurn => "relay-churn",
            Fault::Timeout => "timeout",
            Fault::TruncateResponse => "truncate-response",
            Fault::CorruptResponse => "corrupt-response",
            Fault::ServiceHiccup => "service-hiccup",
        };
        f.write_str(name)
    }
}

/// Per-request probability of each fault kind. At most one fault fires
/// per request, so the rates must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of [`Fault::CircuitCollapse`].
    pub circuit_collapse: f64,
    /// Probability of [`Fault::RelayChurn`].
    pub relay_churn: f64,
    /// Probability of [`Fault::Timeout`].
    pub timeout: f64,
    /// Probability of [`Fault::TruncateResponse`].
    pub truncate_response: f64,
    /// Probability of [`Fault::CorruptResponse`].
    pub corrupt_response: f64,
    /// Probability of [`Fault::ServiceHiccup`].
    pub service_hiccup: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> FaultRates {
        FaultRates::default()
    }

    /// Every fault kind at the same per-request probability. A `uniform(r)`
    /// plan injects *some* fault on `6 r` of requests.
    pub fn uniform(rate: f64) -> FaultRates {
        FaultRates {
            circuit_collapse: rate,
            relay_churn: rate,
            timeout: rate,
            truncate_response: rate,
            corrupt_response: rate,
            service_hiccup: rate,
        }
    }

    /// A mixed profile that injects a fault on roughly `total` of
    /// requests, split across all kinds with transient faults (timeouts,
    /// hiccups, mangled bytes) four times as likely as circuit-killing
    /// ones — the proportion long Tor crawls actually see.
    pub fn mixed(total: f64) -> FaultRates {
        assert!((0.0..=1.0).contains(&total), "total rate must be in [0, 1]");
        // 2 rare kinds at w, 4 common kinds at 4w: total = 18 w.
        let w = total / 18.0;
        FaultRates {
            circuit_collapse: w,
            relay_churn: w,
            timeout: 4.0 * w,
            truncate_response: 4.0 * w,
            corrupt_response: 4.0 * w,
            service_hiccup: 4.0 * w,
        }
    }

    /// The probability that *some* fault fires on a request.
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }

    fn as_array(&self) -> [f64; 6] {
        [
            self.circuit_collapse,
            self.relay_churn,
            self.timeout,
            self.truncate_response,
            self.corrupt_response,
            self.service_hiccup,
        ]
    }
}

/// A seeded, deterministic schedule of transport faults.
///
/// Attach one to a [`TorNetwork`](crate::TorNetwork) via
/// [`set_fault_plan`](crate::TorNetwork::set_fault_plan); every channel
/// connected through that network then consults the shared plan on each
/// request. Specific faults can also be queued unconditionally with
/// [`force`](FaultPlan::force), which is how tests stage exact scenarios.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: StdRng,
    rates: FaultRates,
    forced: VecDeque<Fault>,
    injected: [u64; 6],
    requests: u64,
}

impl FaultPlan {
    /// Creates a plan drawing faults at `rates`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or the rates sum to more than 1.
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        assert!(
            rates.as_array().iter().all(|r| *r >= 0.0),
            "fault rates must be non-negative"
        );
        assert!(
            rates.total() <= 1.0 + 1e-12,
            "fault rates sum to {} > 1",
            rates.total()
        );
        FaultPlan {
            rng: StdRng::seed_from_u64(seed ^ 0xFA_017),
            rates,
            forced: VecDeque::new(),
            injected: [0; 6],
            requests: 0,
        }
    }

    /// A plan that never fires on its own (useful with [`force`][Self::force]).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan::new(seed, FaultRates::none())
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Queues `fault` to fire on the next request, ahead of any random
    /// draws. Multiple forced faults fire in FIFO order.
    pub fn force(&mut self, fault: Fault) {
        self.forced.push_back(fault);
    }

    /// Draws the fault (if any) for the next request. Called by the
    /// transport once per round-trip.
    pub fn next_fault(&mut self) -> Option<Fault> {
        self.requests += 1;
        let fault = if let Some(forced) = self.forced.pop_front() {
            Some(forced)
        } else {
            // Single draw against the cumulative distribution, so kinds
            // are mutually exclusive per request.
            let x: f64 = self.rng.gen();
            let mut cumulative = 0.0;
            let mut hit = None;
            for (fault, rate) in Fault::ALL.iter().zip(self.rates.as_array()) {
                cumulative += rate;
                if x < cumulative {
                    hit = Some(*fault);
                    break;
                }
            }
            hit
        };
        if let Some(f) = fault {
            self.injected[f.index()] += 1;
        }
        fault
    }

    /// Truncates `bytes` at a plan-chosen point (strictly shorter than the
    /// original whenever the response was non-empty).
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let keep = self.rng.gen_range(0..bytes.len());
        bytes.truncate(keep);
    }

    /// Flips one to four random bytes of `bytes` (each XORed with a
    /// non-zero mask, so the payload always changes).
    pub fn corrupt(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let flips = self.rng.gen_range(1..=4usize.min(bytes.len()));
        for _ in 0..flips {
            let pos = self.rng.gen_range(0..bytes.len());
            let mask = self.rng.gen_range(1..=255u8);
            bytes[pos] ^= mask;
        }
    }

    /// How long a [`Fault::Timeout`] made the client wait, in ms.
    pub fn timeout_ms(&mut self) -> u64 {
        self.rng.gen_range(1_000..30_000)
    }

    /// Requests scheduled through this plan so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Faults of one kind injected so far.
    pub fn injected_of(&self, fault: Fault) -> u64 {
        self.injected[fault.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = FaultPlan::new(7, FaultRates::uniform(0.05));
        let mut b = FaultPlan::new(7, FaultRates::uniform(0.05));
        let draws_a: Vec<_> = (0..500).map(|_| a.next_fault()).collect();
        let draws_b: Vec<_> = (0..500).map(|_| b.next_fault()).collect();
        assert_eq!(draws_a, draws_b);
        let mut c = FaultPlan::new(8, FaultRates::uniform(0.05));
        let draws_c: Vec<_> = (0..500).map(|_| c.next_fault()).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn quiet_plan_never_fires() {
        let mut plan = FaultPlan::quiet(1);
        assert!((0..1_000).all(|_| plan.next_fault().is_none()));
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.requests(), 1_000);
    }

    #[test]
    fn forced_faults_fire_first_in_order() {
        let mut plan = FaultPlan::quiet(1);
        plan.force(Fault::Timeout);
        plan.force(Fault::CircuitCollapse);
        assert_eq!(plan.next_fault(), Some(Fault::Timeout));
        assert_eq!(plan.next_fault(), Some(Fault::CircuitCollapse));
        assert_eq!(plan.next_fault(), None);
        assert_eq!(plan.injected_of(Fault::Timeout), 1);
        assert_eq!(plan.injected_of(Fault::CircuitCollapse), 1);
    }

    #[test]
    fn rates_hit_roughly_the_target_frequency() {
        let mut plan = FaultPlan::new(3, FaultRates::mixed(0.2));
        let n = 20_000;
        let fired = (0..n).filter(|_| plan.next_fault().is_some()).count();
        let rate = fired as f64 / f64::from(n);
        assert!((0.17..0.23).contains(&rate), "observed rate {rate}");
        // Transient kinds are configured 4x the circuit-killing ones.
        let transient = plan.injected_of(Fault::Timeout);
        let fatal = plan.injected_of(Fault::CircuitCollapse).max(1);
        assert!(transient > fatal, "{transient} vs {fatal}");
    }

    #[test]
    fn truncate_shortens_and_corrupt_changes() {
        let mut plan = FaultPlan::quiet(5);
        let original: Vec<u8> = (0..100).collect();
        let mut t = original.clone();
        plan.truncate(&mut t);
        assert!(t.len() < original.len());
        assert_eq!(&original[..t.len()], &t[..]);
        let mut c = original.clone();
        plan.corrupt(&mut c);
        assert_eq!(c.len(), original.len());
        assert_ne!(c, original);
        // Degenerate inputs must not panic.
        let mut empty: Vec<u8> = Vec::new();
        plan.truncate(&mut empty);
        plan.corrupt(&mut empty);
        let mut one = vec![9u8];
        plan.corrupt(&mut one);
        assert_ne!(one, vec![9u8]);
    }

    #[test]
    fn mixed_rates_sum_to_total() {
        let rates = FaultRates::mixed(0.2);
        assert!((rates.total() - 0.2).abs() < 1e-12);
        assert!((FaultRates::uniform(0.01).total() - 0.06).abs() < 1e-12);
        assert_eq!(FaultRates::none().total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::new(1, FaultRates::uniform(0.2));
    }
}
