//! Relays and the network consensus.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier (fingerprint) of a relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelayId(u64);

impl RelayId {
    /// Creates a relay id from a raw fingerprint value.
    pub const fn new(raw: u64) -> RelayId {
        RelayId(raw)
    }

    /// The raw fingerprint value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RelayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:016x}", self.0)
    }
}

/// Capability flags a relay advertises in the consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelayFlags {
    /// May be used as an entry guard.
    pub guard: bool,
    /// May be used as an exit node.
    pub exit: bool,
    /// Serves as a hidden-service directory.
    pub hsdir: bool,
}

impl RelayFlags {
    /// A middle-only relay.
    pub const MIDDLE: RelayFlags = RelayFlags {
        guard: false,
        exit: false,
        hsdir: false,
    };

    /// A fully capable relay.
    pub const ALL: RelayFlags = RelayFlags {
        guard: true,
        exit: true,
        hsdir: true,
    };
}

/// A Tor relay as listed in the consensus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relay {
    id: RelayId,
    nickname: String,
    bandwidth_kbps: u32,
    flags: RelayFlags,
}

impl Relay {
    /// Creates a relay entry.
    pub fn new(
        id: RelayId,
        nickname: impl Into<String>,
        bandwidth_kbps: u32,
        flags: RelayFlags,
    ) -> Relay {
        Relay {
            id,
            nickname: nickname.into(),
            bandwidth_kbps,
            flags,
        }
    }

    /// The relay fingerprint.
    pub fn id(&self) -> RelayId {
        self.id
    }

    /// The operator-chosen nickname.
    pub fn nickname(&self) -> &str {
        &self.nickname
    }

    /// Advertised bandwidth in kbit/s (used for weighted path selection).
    pub fn bandwidth_kbps(&self) -> u32 {
        self.bandwidth_kbps
    }

    /// Capability flags.
    pub fn flags(&self) -> RelayFlags {
        self.flags
    }
}

impl fmt::Display for Relay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.nickname, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Relay::new(RelayId::new(7), "moria1", 5_000, RelayFlags::ALL);
        assert_eq!(r.id().raw(), 7);
        assert_eq!(r.nickname(), "moria1");
        assert_eq!(r.bandwidth_kbps(), 5_000);
        assert!(r.flags().guard && r.flags().exit && r.flags().hsdir);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the flag constants
    fn middle_flags() {
        assert!(!RelayFlags::MIDDLE.guard);
        assert!(!RelayFlags::MIDDLE.exit);
        assert!(!RelayFlags::MIDDLE.hsdir);
    }

    #[test]
    fn display() {
        let r = Relay::new(RelayId::new(0xAB), "nick", 1, RelayFlags::MIDDLE);
        assert_eq!(r.to_string(), "nick ($00000000000000ab)");
    }
}
