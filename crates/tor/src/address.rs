//! Onion addresses.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TorError;

/// The base32 alphabet used by onion addresses (RFC 4648, lowercase).
const BASE32: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// A v2-style onion address: 16 base32 characters derived from the hash of
/// the service's public key, plus the `.onion` TLD.
///
/// §II.B of the paper: *"their host name consists of a string of 16
/// characters derived from the service's public key"*.
///
/// ```
/// use crowdtz_tor::OnionAddress;
///
/// let addr = OnionAddress::derive(b"my-service-public-key");
/// assert_eq!(addr.to_string().len(), 16 + ".onion".len());
/// let parsed: OnionAddress = addr.to_string().parse()?;
/// assert_eq!(parsed, addr);
/// # Ok::<(), crowdtz_tor::TorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OnionAddress {
    label: [u8; 16],
}

impl OnionAddress {
    /// Derives the address from a service public key, mimicking the real
    /// scheme (hash of the key, truncated, base32-encoded).
    ///
    /// The hash is an 80-bit truncation of a split FNV-1a digest — not
    /// cryptographic, but deterministic and well-spread, which is all the
    /// simulation needs.
    pub fn derive(public_key: &[u8]) -> OnionAddress {
        // Two passes of 64-bit FNV-1a with different offsets → 128 bits,
        // of which 80 are encoded (16 base32 chars × 5 bits).
        let h1 = fnv1a(public_key, 0xcbf2_9ce4_8422_2325);
        let h2 = fnv1a(public_key, 0x6c62_272e_07bb_0142);
        let mut bits = [0u8; 10]; // 80 bits
        bits[..8].copy_from_slice(&h1.to_be_bytes());
        bits[8..].copy_from_slice(&h2.to_be_bytes()[..2]);
        let mut label = [0u8; 16];
        for (i, slot) in label.iter_mut().enumerate() {
            let bit_index = i * 5;
            let byte = bit_index / 8;
            let shift = bit_index % 8;
            let mut value = (bits[byte] as u16) << 8;
            if byte + 1 < bits.len() {
                value |= bits[byte + 1] as u16;
            }
            let five = ((value >> (11 - shift)) & 0x1F) as usize;
            *slot = BASE32[five];
        }
        OnionAddress { label }
    }

    /// The 16-character label (without `.onion`).
    pub fn label(&self) -> &str {
        std::str::from_utf8(&self.label).expect("label is ASCII base32")
    }
}

fn fnv1a(data: &[u8], offset: u64) -> u64 {
    let mut hash = offset;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

impl fmt::Display for OnionAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.onion", self.label())
    }
}

impl FromStr for OnionAddress {
    type Err = TorError;

    fn from_str(s: &str) -> Result<OnionAddress, TorError> {
        let err = || TorError::InvalidAddress { input: s.into() };
        let label = s.strip_suffix(".onion").ok_or_else(err)?;
        if label.len() != 16 {
            return Err(err());
        }
        let mut out = [0u8; 16];
        for (dst, c) in out.iter_mut().zip(label.bytes()) {
            if !BASE32.contains(&c) {
                return Err(err());
            }
            *dst = c;
        }
        Ok(OnionAddress { label: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = OnionAddress::derive(b"key");
        let b = OnionAddress::derive(b"key");
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_different_addresses() {
        assert_ne!(OnionAddress::derive(b"key1"), OnionAddress::derive(b"key2"));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let a = OnionAddress::derive(b"forum");
        let s = a.to_string();
        assert!(s.ends_with(".onion"));
        assert_eq!(s.len(), 22);
        let parsed: OnionAddress = s.parse().unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<OnionAddress>().is_err());
        assert!("abc.onion".parse::<OnionAddress>().is_err()); // too short
        assert!("abcdefghijklmnop".parse::<OnionAddress>().is_err()); // no TLD
        assert!("ABCDEFGHIJKLMNOP.onion".parse::<OnionAddress>().is_err()); // uppercase
        assert!("abcdefghijklmn0p.onion".parse::<OnionAddress>().is_err()); // '0' not in alphabet
        assert!("abcdefghijklmnopq.onion".parse::<OnionAddress>().is_err()); // 17 chars
    }

    #[test]
    fn labels_use_base32_alphabet() {
        for key in [&b"a"[..], b"bb", b"ccc", b"the quick brown fox"] {
            let addr = OnionAddress::derive(key);
            for c in addr.label().bytes() {
                assert!(BASE32.contains(&c), "bad char {c}");
            }
        }
    }

    #[test]
    fn spread_over_many_keys() {
        // 1000 distinct keys → no collisions expected at 80 bits.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            let addr = OnionAddress::derive(&i.to_be_bytes());
            assert!(seen.insert(addr), "collision at {i}");
        }
    }
}
