//! Error type for the Tor substrate.

use std::fmt;

use crate::relay::RelayId;

/// The error type returned by fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TorError {
    /// The consensus does not contain enough distinct relays to build a
    /// three-hop circuit (plus any already-reserved relays).
    NotEnoughRelays {
        /// Relays available.
        available: usize,
        /// Relays required.
        required: usize,
    },
    /// No hidden-service descriptor is published under the address.
    UnknownService {
        /// The onion address that failed to resolve.
        address: String,
    },
    /// A malformed onion address string was parsed.
    InvalidAddress {
        /// The rejected input.
        input: String,
    },
    /// The hidden service's introduction points are no longer part of the
    /// consensus (the service must republish).
    StaleDescriptor {
        /// The affected onion address.
        address: String,
    },
    /// The service handler is gone (service was taken down mid-session).
    ServiceUnavailable {
        /// The affected onion address.
        address: String,
    },
    /// The channel's circuit pair was torn down mid-session (injected or
    /// spontaneous). The channel stays unusable until the client rebuilds
    /// it with [`AnonymousChannel::rebuild`](crate::AnonymousChannel::rebuild).
    CircuitCollapsed {
        /// The affected onion address.
        address: String,
    },
    /// The request went unanswered and the client gave up waiting. The
    /// circuit itself is still standing; retrying on the same channel is
    /// sound.
    RequestTimeout {
        /// How long the client waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// A relay on the standing circuit left the consensus, invalidating
    /// the circuit. A rebuild selects a fresh path without it.
    RelayChurned {
        /// The relay that disappeared.
        relay: RelayId,
    },
}

impl fmt::Display for TorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TorError::NotEnoughRelays {
                available,
                required,
            } => write!(
                f,
                "not enough relays for a circuit: {available} available, {required} required"
            ),
            TorError::UnknownService { address } => {
                write!(f, "no descriptor published for {address}")
            }
            TorError::InvalidAddress { input } => {
                write!(f, "invalid onion address {input:?}")
            }
            TorError::StaleDescriptor { address } => {
                write!(
                    f,
                    "descriptor for {address} references relays no longer in consensus"
                )
            }
            TorError::ServiceUnavailable { address } => {
                write!(f, "hidden service {address} is unavailable")
            }
            TorError::CircuitCollapsed { address } => {
                write!(f, "circuit to {address} collapsed; rebuild required")
            }
            TorError::RequestTimeout { waited_ms } => {
                write!(f, "request timed out after {waited_ms} ms")
            }
            TorError::RelayChurned { relay } => {
                write!(f, "relay {relay} left the consensus; circuit invalidated")
            }
        }
    }
}

impl TorError {
    /// True for transient faults: retrying the same request over the same
    /// channel is sound and may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TorError::RequestTimeout { .. } | TorError::ServiceUnavailable { .. }
        )
    }

    /// True when the standing circuit is gone and the channel must be
    /// rebuilt before any retry can succeed.
    pub fn needs_rebuild(&self) -> bool {
        matches!(
            self,
            TorError::CircuitCollapsed { .. } | TorError::RelayChurned { .. }
        )
    }
}

impl std::error::Error for TorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TorError::NotEnoughRelays {
            available: 2,
            required: 6,
        };
        assert!(e.to_string().contains("2 available"));
        let e = TorError::UnknownService {
            address: "abc.onion".into(),
        };
        assert!(e.to_string().contains("abc.onion"));
    }

    #[test]
    fn error_traits() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<TorError>();
    }
}
