//! Three-hop circuits.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::TorError;
use crate::relay::{Relay, RelayId};

/// The position of a relay within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CircuitPosition {
    /// The entry guard — the only hop that talks to the client.
    Entry,
    /// The middle hop — sees neither endpoint.
    Middle,
    /// The exit hop — the only hop that talks to the destination.
    Exit,
}

/// A three-hop Tor circuit: entry guard, middle, exit.
///
/// §II.A of the paper: *"the guard is the only relay that communicates with
/// the user, while it has no information on the final destination. The exit
/// relay is the only one that communicates with the final destination,
/// while it has no information on the user."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Circuit {
    entry: RelayId,
    middle: RelayId,
    exit: RelayId,
}

impl Circuit {
    /// Builds a circuit from three distinct relays.
    ///
    /// # Errors
    ///
    /// Returns [`TorError::NotEnoughRelays`] if the relays are not
    /// pairwise distinct (a real client never reuses a relay in a path).
    pub fn new(entry: RelayId, middle: RelayId, exit: RelayId) -> Result<Circuit, TorError> {
        if entry == middle || middle == exit || entry == exit {
            return Err(TorError::NotEnoughRelays {
                available: 2,
                required: 3,
            });
        }
        Ok(Circuit {
            entry,
            middle,
            exit,
        })
    }

    /// Selects a bandwidth-weighted random circuit from the consensus,
    /// avoiding the relays in `exclude`.
    ///
    /// Entry relays must carry the guard flag; path selection weights
    /// choices by advertised bandwidth, as real Tor does (and as the
    /// low-resource attacks discussed in the paper's related work exploit).
    ///
    /// # Errors
    ///
    /// Returns [`TorError::NotEnoughRelays`] when fewer than three usable
    /// distinct relays remain.
    pub fn select<R: Rng + ?Sized>(
        rng: &mut R,
        relays: &[Relay],
        exclude: &[RelayId],
    ) -> Result<Circuit, TorError> {
        let usable = |r: &&Relay| !exclude.contains(&r.id());
        let guards: Vec<&Relay> = relays
            .iter()
            .filter(|r| r.flags().guard)
            .filter(usable)
            .collect();
        let entry = pick_weighted(rng, &guards).ok_or(TorError::NotEnoughRelays {
            available: guards.len(),
            required: 3,
        })?;
        let middles: Vec<&Relay> = relays
            .iter()
            .filter(usable)
            .filter(|r| r.id() != entry)
            .collect();
        let middle = pick_weighted(rng, &middles).ok_or(TorError::NotEnoughRelays {
            available: middles.len() + 1,
            required: 3,
        })?;
        let exits: Vec<&Relay> = relays
            .iter()
            .filter(usable)
            .filter(|r| r.id() != entry && r.id() != middle)
            .collect();
        let exit = pick_weighted(rng, &exits).ok_or(TorError::NotEnoughRelays {
            available: exits.len() + 2,
            required: 3,
        })?;
        Circuit::new(entry, middle, exit)
    }

    /// The entry guard.
    pub fn entry(&self) -> RelayId {
        self.entry
    }

    /// The middle relay.
    pub fn middle(&self) -> RelayId {
        self.middle
    }

    /// The exit relay.
    pub fn exit(&self) -> RelayId {
        self.exit
    }

    /// The relay at a given position.
    pub fn at(&self, position: CircuitPosition) -> RelayId {
        match position {
            CircuitPosition::Entry => self.entry,
            CircuitPosition::Middle => self.middle,
            CircuitPosition::Exit => self.exit,
        }
    }

    /// Whether the circuit uses the given relay anywhere.
    pub fn contains(&self, id: RelayId) -> bool {
        self.entry == id || self.middle == id || self.exit == id
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {} → {}", self.entry, self.middle, self.exit)
    }
}

/// Bandwidth-weighted random pick.
fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, relays: &[&Relay]) -> Option<RelayId> {
    let total: u64 = relays
        .iter()
        .map(|r| u64::from(r.bandwidth_kbps()).max(1))
        .sum();
    if relays.is_empty() || total == 0 {
        return None;
    }
    let mut target = rng.gen_range(0..total);
    for r in relays {
        let w = u64::from(r.bandwidth_kbps()).max(1);
        if target < w {
            return Some(r.id());
        }
        target -= w;
    }
    relays.last().map(|r| r.id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::RelayFlags;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relay(id: u64, bw: u32, guard: bool) -> Relay {
        Relay::new(
            RelayId::new(id),
            format!("r{id}"),
            bw,
            RelayFlags {
                guard,
                exit: true,
                hsdir: false,
            },
        )
    }

    #[test]
    fn rejects_duplicate_relays() {
        let a = RelayId::new(1);
        let b = RelayId::new(2);
        assert!(Circuit::new(a, a, b).is_err());
        assert!(Circuit::new(a, b, b).is_err());
        assert!(Circuit::new(a, b, a).is_err());
        assert!(Circuit::new(a, b, RelayId::new(3)).is_ok());
    }

    #[test]
    fn select_produces_distinct_hops() {
        let relays: Vec<Relay> = (0..10).map(|i| relay(i, 100, true)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = Circuit::select(&mut rng, &relays, &[]).unwrap();
            assert_ne!(c.entry(), c.middle());
            assert_ne!(c.middle(), c.exit());
            assert_ne!(c.entry(), c.exit());
        }
    }

    #[test]
    fn select_requires_guard_for_entry() {
        // Only relay 0 is a guard.
        let mut relays: Vec<Relay> = (1..5).map(|i| relay(i, 100, false)).collect();
        relays.push(relay(0, 100, true));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = Circuit::select(&mut rng, &relays, &[]).unwrap();
            assert_eq!(c.entry(), RelayId::new(0));
        }
    }

    #[test]
    fn select_honours_exclusions() {
        let relays: Vec<Relay> = (0..5).map(|i| relay(i, 100, true)).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let excluded = RelayId::new(2);
        for _ in 0..50 {
            let c = Circuit::select(&mut rng, &relays, &[excluded]).unwrap();
            assert!(!c.contains(excluded));
        }
    }

    #[test]
    fn select_fails_with_too_few_relays() {
        let relays: Vec<Relay> = (0..2).map(|i| relay(i, 100, true)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            Circuit::select(&mut rng, &relays, &[]),
            Err(TorError::NotEnoughRelays { .. })
        ));
    }

    #[test]
    fn bandwidth_weighting_biases_selection() {
        // One relay has 100× the bandwidth of the others; it should appear
        // in the vast majority of circuits.
        let mut relays: Vec<Relay> = (0..10).map(|i| relay(i, 10, true)).collect();
        relays.push(relay(99, 10_000, true));
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..500)
            .filter(|_| {
                Circuit::select(&mut rng, &relays, &[])
                    .unwrap()
                    .contains(RelayId::new(99))
            })
            .count();
        assert!(hits > 400, "big relay in only {hits}/500 circuits");
    }

    #[test]
    fn at_positions() {
        let c = Circuit::new(RelayId::new(1), RelayId::new(2), RelayId::new(3)).unwrap();
        assert_eq!(c.at(CircuitPosition::Entry), RelayId::new(1));
        assert_eq!(c.at(CircuitPosition::Middle), RelayId::new(2));
        assert_eq!(c.at(CircuitPosition::Exit), RelayId::new(3));
        assert!(c.to_string().contains("→"));
    }
}
