//! A minimal in-process Tor hidden-service substrate.
//!
//! §II of the paper describes the infrastructure its measurements ride on:
//! onion-routed circuits of three relays, hidden services reachable through
//! *introduction points*, *hidden service directories*, and a *rendezvous
//! point*, such that *"both entities are anonymous to each other and no
//! node in the system has complete information about the communication"*.
//!
//! This crate models that machinery in-process — relays, consensus,
//! circuit construction, descriptor publication and the rendezvous
//! handshake — so the forum scraper in `crowdtz-forum` reaches its target
//! the way the paper's crawler reached the real forums, and so tests can
//! assert the crucial invariant: **the service never learns the client's
//! address and the client never learns the service's**.
//!
//! It is a behavioural simulation, not a cryptographic implementation:
//! cells are not encrypted, but the *information flow* (who can see which
//! identifier at each hop) is enforced by the API.
//!
//! # Example
//!
//! ```
//! use crowdtz_tor::{HiddenService, TorNetwork};
//!
//! let mut network = TorNetwork::with_relays(30, 42);
//! let service = HiddenService::create("echo", 7, |req: &[u8]| req.to_vec());
//! let address = network.publish(service)?;
//! let mut channel = network.connect(&address, 1)?;
//! assert_eq!(channel.request(b"hello")?, b"hello");
//! # Ok::<(), crowdtz_tor::TorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod address;
mod circuit;
mod error;
mod fault;
mod network;
mod relay;

pub use address::OnionAddress;
pub use circuit::{Circuit, CircuitPosition};
pub use error::TorError;
pub use fault::{Fault, FaultPlan, FaultRates};
pub use network::{AnonymousChannel, HiddenService, ServiceDescriptor, TorNetwork};
pub use relay::{Relay, RelayFlags, RelayId};
