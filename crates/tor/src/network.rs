//! The in-process Tor network: consensus, hidden-service directories, and
//! the rendezvous handshake.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::address::OnionAddress;
use crate::circuit::Circuit;
use crate::error::TorError;
use crate::fault::{Fault, FaultPlan};
use crate::relay::{Relay, RelayFlags, RelayId};

/// A fault plan shared between the network and all channels built on it.
type SharedFaultPlan = Arc<Mutex<FaultPlan>>;

/// Observability handles for fault injection, cloned into every channel
/// built on the network. Counts are recorded out-of-band: no simulation
/// path reads them back, so attaching an observer never changes behaviour.
#[derive(Debug, Clone)]
struct FaultObs {
    injected: crowdtz_obs::Counter,
    by_kind: [crowdtz_obs::Counter; 6],
}

impl FaultObs {
    fn new(observer: &crowdtz_obs::Observer) -> FaultObs {
        FaultObs {
            injected: observer.counter("tor.fault.injected"),
            by_kind: Fault::ALL.map(|f| observer.counter(&format!("tor.fault.{f}"))),
        }
    }

    fn record(&self, fault: Fault) {
        self.injected.inc();
        if let Some(idx) = Fault::ALL.iter().position(|f| *f == fault) {
            self.by_kind[idx].inc();
        }
    }
}

/// The handler a hidden service runs: a request/response function.
type Handler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// A hidden service awaiting publication: a name (used to derive the key
/// and thus the onion address) and a request handler.
#[derive(Clone)]
pub struct HiddenService {
    address: OnionAddress,
    seed: u64,
    handler: Handler,
}

impl HiddenService {
    /// Creates a hidden service whose onion address is derived from `name`
    /// (standing in for the service key pair).
    ///
    /// The handler is the service's application logic — in this workspace,
    /// a Dark Web forum answering page requests.
    pub fn create<F>(name: &str, seed: u64, handler: F) -> HiddenService
    where
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        HiddenService {
            address: OnionAddress::derive(name.as_bytes()),
            seed,
            handler: Arc::new(handler),
        }
    }

    /// The service's onion address.
    pub fn address(&self) -> OnionAddress {
        self.address
    }
}

impl fmt::Debug for HiddenService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HiddenService")
            .field("address", &self.address)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// The descriptor a hidden service publishes to the HS directories:
/// its address and chosen introduction points. Contains **no** location
/// information about the service host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceDescriptor {
    address: OnionAddress,
    introduction_points: Vec<RelayId>,
}

impl ServiceDescriptor {
    /// The service address.
    pub fn address(&self) -> OnionAddress {
        self.address
    }

    /// The introduction point relays.
    pub fn introduction_points(&self) -> &[RelayId] {
        &self.introduction_points
    }
}

/// The simulated Tor network: a relay consensus, hidden-service
/// directories, and the registry of running services.
pub struct TorNetwork {
    relays: Arc<Vec<Relay>>,
    descriptors: HashMap<OnionAddress, ServiceDescriptor>,
    services: HashMap<OnionAddress, (Handler, Circuit)>,
    fault_plan: Option<SharedFaultPlan>,
    obs: Option<FaultObs>,
}

impl TorNetwork {
    /// Builds a network with `n` relays (deterministic from `seed`).
    ///
    /// Roughly half the relays get the guard flag, a third the exit flag,
    /// a quarter the HSDir flag, with bandwidths spread over two orders of
    /// magnitude — a coarse sketch of the real consensus the paper's §II
    /// describes (≈7,000 relays).
    pub fn with_relays(n: usize, seed: u64) -> TorNetwork {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let relays = (0..n)
            .map(|i| {
                let flags = RelayFlags {
                    guard: rng.gen_bool(0.5),
                    exit: rng.gen_bool(0.33),
                    hsdir: rng.gen_bool(0.25),
                };
                Relay::new(
                    RelayId::new(rng.gen()),
                    format!("relay{i}"),
                    rng.gen_range(100..20_000),
                    flags,
                )
            })
            .collect();
        TorNetwork {
            relays: Arc::new(relays),
            descriptors: HashMap::new(),
            services: HashMap::new(),
            fault_plan: None,
            obs: crowdtz_obs::global().map(|g| FaultObs::new(&g)),
        }
    }

    /// Attaches an observer whose `tor.fault.*` counters record every
    /// injected fault. Channels connected after this call carry the
    /// handles; the globally installed observer (if any) is picked up
    /// automatically at construction.
    pub fn set_observer(&mut self, observer: Arc<crowdtz_obs::Observer>) {
        self.obs = Some(FaultObs::new(&observer));
    }

    /// The consensus relay list.
    pub fn relays(&self) -> &[Relay] {
        &self.relays
    }

    /// Attaches a fault plan. Channels connected **after** this call share
    /// the plan and consult it on every request; channels connected before
    /// keep whatever plan (or none) was active at connect time.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(Arc::new(Mutex::new(plan)));
    }

    /// Detaches the fault plan for future connections.
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
    }

    /// Queues a specific fault on the attached plan (next request fires it).
    ///
    /// # Panics
    ///
    /// Panics if no plan is attached.
    pub fn force_fault(&self, fault: Fault) {
        self.fault_plan
            .as_ref()
            .expect("force_fault called with no fault plan attached")
            .lock()
            .force(fault);
    }

    /// Total faults injected by the attached plan, if any.
    pub fn faults_injected(&self) -> u64 {
        self.fault_plan
            .as_ref()
            .map_or(0, |plan| plan.lock().injected())
    }

    /// Number of published hidden services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Performs the hidden-service setup of §II.B: the service selects
    /// introduction points, opens a circuit to them, and uploads its
    /// descriptor to the responsible HS directories. Returns the onion
    /// address clients should use.
    ///
    /// # Errors
    ///
    /// Returns [`TorError::NotEnoughRelays`] when no circuit can be built.
    pub fn publish(&mut self, service: HiddenService) -> Result<OnionAddress, TorError> {
        let mut rng = StdRng::seed_from_u64(service.seed);
        // The service's own circuit towards its introduction points.
        let service_circuit = Circuit::select(&mut rng, &self.relays, &[])?;
        // Introduction points: up to three relays not already on the
        // service circuit.
        let intro: Vec<RelayId> = self
            .relays
            .iter()
            .filter(|r| !service_circuit.contains(r.id()))
            .take(3)
            .map(Relay::id)
            .collect();
        if intro.is_empty() {
            return Err(TorError::NotEnoughRelays {
                available: self.relays.len(),
                required: 4,
            });
        }
        let descriptor = ServiceDescriptor {
            address: service.address,
            introduction_points: intro,
        };
        self.descriptors.insert(service.address, descriptor);
        self.services
            .insert(service.address, (service.handler, service_circuit));
        Ok(service.address)
    }

    /// Removes a service (site taken down, as happened to Silk Road).
    pub fn take_down(&mut self, address: &OnionAddress) {
        self.services.remove(address);
        self.descriptors.remove(address);
    }

    /// Fetches a service descriptor from the HS directories, as the client
    /// does before connecting.
    ///
    /// # Errors
    ///
    /// Returns [`TorError::UnknownService`] for unpublished addresses.
    pub fn fetch_descriptor(&self, address: &OnionAddress) -> Result<&ServiceDescriptor, TorError> {
        self.descriptors
            .get(address)
            .ok_or_else(|| TorError::UnknownService {
                address: address.to_string(),
            })
    }

    /// Performs the client side of the rendezvous handshake of §II.B and
    /// returns an anonymous channel to the service:
    ///
    /// 1. fetch the descriptor from an HS directory;
    /// 2. select a rendezvous point and build a circuit to it;
    /// 3. tell an introduction point the rendezvous address;
    /// 4. the service builds its own circuit to the rendezvous point.
    ///
    /// # Errors
    ///
    /// * [`TorError::UnknownService`] — no descriptor published.
    /// * [`TorError::ServiceUnavailable`] — descriptor exists but the
    ///   service is gone.
    /// * [`TorError::NotEnoughRelays`] — circuit construction failed.
    pub fn connect(
        &self,
        address: &OnionAddress,
        client_seed: u64,
    ) -> Result<AnonymousChannel, TorError> {
        let descriptor = self.fetch_descriptor(address)?;
        let (handler, service_circuit) =
            self.services
                .get(address)
                .ok_or_else(|| TorError::ServiceUnavailable {
                    address: address.to_string(),
                })?;
        let mut rng = StdRng::seed_from_u64(client_seed ^ 0xC11E57);
        // Client circuit to the rendezvous point.
        let client_circuit = Circuit::select(&mut rng, &self.relays, &[])?;
        // The rendezvous point is the client circuit's exit.
        let rendezvous = client_circuit.exit();
        // The introduction point used to pass the rendezvous address along.
        let introduction = descriptor.introduction_points()[0];
        Ok(AnonymousChannel {
            address: *address,
            client_circuit,
            service_circuit: *service_circuit,
            rendezvous,
            introduction,
            handler: Arc::clone(handler),
            requests_served: 0,
            relays: Arc::clone(&self.relays),
            faults: self.fault_plan.clone(),
            obs: self.obs.clone(),
            client_seed,
            broken: false,
            rebuilds: 0,
        })
    }
}

impl fmt::Debug for TorNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TorNetwork")
            .field("relays", &self.relays.len())
            .field("services", &self.services.len())
            .finish()
    }
}

/// An established anonymous channel between a client and a hidden service.
///
/// The type deliberately exposes only circuit/relay metadata: there is no
/// client address and no service address to leak — mirroring the
/// information flow the real protocol guarantees.
pub struct AnonymousChannel {
    address: OnionAddress,
    client_circuit: Circuit,
    service_circuit: Circuit,
    rendezvous: RelayId,
    introduction: RelayId,
    handler: Handler,
    requests_served: u64,
    /// Consensus snapshot, so the channel can rebuild its own circuit
    /// without holding a reference back into the network.
    relays: Arc<Vec<Relay>>,
    faults: Option<SharedFaultPlan>,
    obs: Option<FaultObs>,
    client_seed: u64,
    broken: bool,
    rebuilds: u64,
}

impl AnonymousChannel {
    /// The onion address this channel reaches.
    pub fn address(&self) -> OnionAddress {
        self.address
    }

    /// The client-side circuit (client ↔ rendezvous point).
    pub fn client_circuit(&self) -> Circuit {
        self.client_circuit
    }

    /// The service-side circuit (service ↔ rendezvous point).
    pub fn service_circuit(&self) -> Circuit {
        self.service_circuit
    }

    /// The rendezvous relay both circuits meet at.
    pub fn rendezvous(&self) -> RelayId {
        self.rendezvous
    }

    /// The introduction point used during setup.
    pub fn introduction(&self) -> RelayId {
        self.introduction
    }

    /// Number of requests sent over this channel so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Whether the channel's circuit is currently down (collapse or relay
    /// churn); requests fail until [`rebuild`](Self::rebuild) succeeds.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// How many times this channel's client circuit has been rebuilt.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Sends a request through the circuit pair and returns the service's
    /// response.
    ///
    /// # Errors
    ///
    /// With no fault plan attached this is infallible. Under a plan, a
    /// request can fail with [`TorError::CircuitCollapsed`],
    /// [`TorError::RelayChurned`], [`TorError::RequestTimeout`], or
    /// [`TorError::ServiceUnavailable`]; it can also *succeed* with
    /// truncated or corrupted bytes, which only the application layer can
    /// detect. A broken channel keeps failing with
    /// [`TorError::CircuitCollapsed`] until [`rebuild`](Self::rebuild).
    pub fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>, TorError> {
        if self.broken {
            return Err(TorError::CircuitCollapsed {
                address: self.address.to_string(),
            });
        }
        self.requests_served += 1;
        let fault = self
            .faults
            .as_ref()
            .and_then(|plan| plan.lock().next_fault());
        if let (Some(obs), Some(f)) = (&self.obs, fault) {
            obs.record(f);
        }
        match fault {
            None => Ok((self.handler)(payload)),
            Some(Fault::CircuitCollapse) => {
                self.broken = true;
                Err(TorError::CircuitCollapsed {
                    address: self.address.to_string(),
                })
            }
            Some(Fault::RelayChurn) => {
                self.broken = true;
                Err(TorError::RelayChurned {
                    relay: self.client_circuit.middle(),
                })
            }
            Some(Fault::Timeout) => {
                let waited_ms = self
                    .faults
                    .as_ref()
                    .map_or(0, |plan| plan.lock().timeout_ms());
                Err(TorError::RequestTimeout { waited_ms })
            }
            Some(Fault::ServiceHiccup) => Err(TorError::ServiceUnavailable {
                address: self.address.to_string(),
            }),
            Some(Fault::TruncateResponse) => {
                let mut response = (self.handler)(payload);
                if let Some(plan) = self.faults.as_ref() {
                    plan.lock().truncate(&mut response);
                }
                Ok(response)
            }
            Some(Fault::CorruptResponse) => {
                let mut response = (self.handler)(payload);
                if let Some(plan) = self.faults.as_ref() {
                    plan.lock().corrupt(&mut response);
                }
                Ok(response)
            }
        }
    }

    /// Replaces the client circuit with a freshly selected one, clearing
    /// the broken state after a collapse or relay churn. The new circuit
    /// is deterministic in the client seed and the rebuild count, and the
    /// rendezvous moves to the new circuit's exit.
    ///
    /// # Errors
    ///
    /// Returns [`TorError::NotEnoughRelays`] when the consensus snapshot
    /// cannot supply a fresh three-hop circuit.
    pub fn rebuild(&mut self) -> Result<(), TorError> {
        let attempt = self.rebuilds + 1;
        let mut rng =
            StdRng::seed_from_u64(self.client_seed ^ 0xC11E57 ^ attempt.wrapping_mul(0x9E3779B1));
        let client_circuit = Circuit::select(&mut rng, &self.relays, &[])?;
        self.client_circuit = client_circuit;
        self.rendezvous = client_circuit.exit();
        self.rebuilds = attempt;
        self.broken = false;
        Ok(())
    }
}

impl fmt::Debug for AnonymousChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousChannel")
            .field("address", &self.address)
            .field("rendezvous", &self.rendezvous)
            .field("requests_served", &self.requests_served)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_service(name: &str) -> HiddenService {
        HiddenService::create(name, 1, |req: &[u8]| {
            let mut out = b"echo:".to_vec();
            out.extend_from_slice(req);
            out
        })
    }

    #[test]
    fn publish_and_connect_round_trip() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        assert_eq!(ch.request(b"hi").unwrap(), b"echo:hi");
        assert_eq!(ch.requests_served(), 1);
        assert_eq!(ch.address(), addr);
    }

    #[test]
    fn unknown_service_errors() {
        let net = TorNetwork::with_relays(30, 7);
        let bogus = OnionAddress::derive(b"nothing-here");
        assert!(matches!(
            net.connect(&bogus, 1),
            Err(TorError::UnknownService { .. })
        ));
        assert!(net.fetch_descriptor(&bogus).is_err());
    }

    #[test]
    fn take_down_removes_service() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("silk-road")).unwrap();
        assert_eq!(net.service_count(), 1);
        net.take_down(&addr);
        assert_eq!(net.service_count(), 0);
        assert!(net.connect(&addr, 1).is_err());
    }

    #[test]
    fn descriptor_has_intro_points_and_no_location() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let desc = net.fetch_descriptor(&addr).unwrap();
        assert!(!desc.introduction_points().is_empty());
        assert!(desc.introduction_points().len() <= 3);
        assert_eq!(desc.address(), addr);
        // The descriptor serializes to address + relay ids only.
        let json = serde_json::to_string(desc).unwrap();
        assert!(!json.contains("ip"), "unexpected field in {json}");
    }

    #[test]
    fn circuits_meet_at_rendezvous_but_do_not_share_identity() {
        let mut net = TorNetwork::with_relays(50, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let ch = net.connect(&addr, 5).unwrap();
        // The rendezvous is the client circuit's exit.
        assert_eq!(ch.rendezvous(), ch.client_circuit().exit());
        // Client and service use different entry guards (their own).
        assert_ne!(ch.client_circuit().entry(), ch.service_circuit().entry());
    }

    #[test]
    fn distinct_clients_get_distinct_circuits() {
        let mut net = TorNetwork::with_relays(50, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let a = net.connect(&addr, 1).unwrap();
        let b = net.connect(&addr, 2).unwrap();
        assert_ne!(a.client_circuit(), b.client_circuit());
    }

    #[test]
    fn too_small_network_fails() {
        let mut net = TorNetwork::with_relays(2, 7);
        assert!(matches!(
            net.publish(echo_service("forum")),
            Err(TorError::NotEnoughRelays { .. })
        ));
    }

    #[test]
    fn addresses_are_stable_for_same_name() {
        let s1 = echo_service("forum");
        let s2 = echo_service("forum");
        assert_eq!(s1.address(), s2.address());
    }

    #[test]
    fn multiple_services_coexist() {
        let mut net = TorNetwork::with_relays(40, 3);
        let a = net.publish(echo_service("alpha")).unwrap();
        let b = net.publish(echo_service("beta")).unwrap();
        assert_ne!(a, b);
        assert_eq!(net.service_count(), 2);
        let mut cha = net.connect(&a, 1).unwrap();
        let mut chb = net.connect(&b, 1).unwrap();
        assert_eq!(cha.request(b"x").unwrap(), b"echo:x");
        assert_eq!(chb.request(b"y").unwrap(), b"echo:y");
    }

    #[test]
    fn quiet_fault_plan_changes_nothing() {
        let mut net = TorNetwork::with_relays(30, 7);
        net.set_fault_plan(FaultPlan::quiet(1));
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        for _ in 0..50 {
            assert_eq!(ch.request(b"hi").unwrap(), b"echo:hi");
        }
        assert_eq!(net.faults_injected(), 0);
        assert!(!ch.is_broken());
    }

    #[test]
    fn circuit_collapse_breaks_channel_until_rebuild() {
        let mut net = TorNetwork::with_relays(30, 7);
        net.set_fault_plan(FaultPlan::quiet(1));
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        net.force_fault(Fault::CircuitCollapse);
        assert!(matches!(
            ch.request(b"hi"),
            Err(TorError::CircuitCollapsed { .. })
        ));
        assert!(ch.is_broken());
        // Still broken: the forced fault is spent, but no rebuild happened.
        assert!(matches!(
            ch.request(b"hi"),
            Err(TorError::CircuitCollapsed { .. })
        ));
        let before = ch.client_circuit();
        ch.rebuild().unwrap();
        assert!(!ch.is_broken());
        assert_ne!(ch.client_circuit(), before);
        assert_eq!(ch.rendezvous(), ch.client_circuit().exit());
        assert_eq!(ch.rebuilds(), 1);
        assert_eq!(ch.request(b"hi").unwrap(), b"echo:hi");
    }

    #[test]
    fn relay_churn_names_a_circuit_relay() {
        let mut net = TorNetwork::with_relays(30, 7);
        net.set_fault_plan(FaultPlan::quiet(1));
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        net.force_fault(Fault::RelayChurn);
        let churned = match ch.request(b"hi") {
            Err(TorError::RelayChurned { relay }) => relay,
            other => panic!("expected RelayChurned, got {other:?}"),
        };
        assert!(ch.client_circuit().contains(churned));
        assert!(ch.is_broken());
        ch.rebuild().unwrap();
        assert_eq!(ch.request(b"hi").unwrap(), b"echo:hi");
    }

    #[test]
    fn timeout_and_hiccup_leave_circuit_standing() {
        let mut net = TorNetwork::with_relays(30, 7);
        net.set_fault_plan(FaultPlan::quiet(1));
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        net.force_fault(Fault::Timeout);
        match ch.request(b"hi") {
            Err(TorError::RequestTimeout { waited_ms }) => assert!(waited_ms >= 1_000),
            other => panic!("expected RequestTimeout, got {other:?}"),
        }
        assert!(!ch.is_broken());
        net.force_fault(Fault::ServiceHiccup);
        assert!(matches!(
            ch.request(b"hi"),
            Err(TorError::ServiceUnavailable { .. })
        ));
        // No rebuild needed after transient faults.
        assert_eq!(ch.request(b"hi").unwrap(), b"echo:hi");
        assert_eq!(ch.rebuilds(), 0);
    }

    #[test]
    fn truncation_and_corruption_mangle_but_succeed() {
        let mut net = TorNetwork::with_relays(30, 7);
        net.set_fault_plan(FaultPlan::quiet(1));
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        let clean = ch.request(b"payload").unwrap();
        net.force_fault(Fault::TruncateResponse);
        let truncated = ch.request(b"payload").unwrap();
        assert!(truncated.len() < clean.len());
        net.force_fault(Fault::CorruptResponse);
        let corrupted = ch.request(b"payload").unwrap();
        assert_eq!(corrupted.len(), clean.len());
        assert_ne!(corrupted, clean);
        assert_eq!(net.faults_injected(), 2);
    }

    #[test]
    fn rebuilds_are_deterministic_per_seed() {
        let mut net = TorNetwork::with_relays(50, 7);
        net.set_fault_plan(FaultPlan::quiet(1));
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut a = net.connect(&addr, 5).unwrap();
        let mut b = net.connect(&addr, 5).unwrap();
        a.rebuild().unwrap();
        b.rebuild().unwrap();
        assert_eq!(a.client_circuit(), b.client_circuit());
        a.rebuild().unwrap();
        assert_ne!(a.client_circuit(), b.client_circuit());
    }

    #[test]
    fn error_classification_matches_recovery_contract() {
        let timeout = TorError::RequestTimeout { waited_ms: 5 };
        assert!(timeout.is_transient() && !timeout.needs_rebuild());
        let collapse = TorError::CircuitCollapsed {
            address: "x".into(),
        };
        assert!(collapse.needs_rebuild() && !collapse.is_transient());
        let churn = TorError::RelayChurned {
            relay: RelayId::new(1),
        };
        assert!(churn.needs_rebuild());
        let gone = TorError::UnknownService {
            address: "x".into(),
        };
        assert!(!gone.is_transient() && !gone.needs_rebuild());
    }

    #[test]
    fn debug_formats_do_not_leak_handler() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let ch = net.connect(&addr, 1).unwrap();
        let s = format!("{ch:?}");
        assert!(s.contains("AnonymousChannel"));
        let s = format!("{net:?}");
        assert!(s.contains("TorNetwork"));
    }
}
