//! The in-process Tor network: consensus, hidden-service directories, and
//! the rendezvous handshake.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::address::OnionAddress;
use crate::circuit::Circuit;
use crate::error::TorError;
use crate::relay::{Relay, RelayFlags, RelayId};

/// The handler a hidden service runs: a request/response function.
type Handler = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// A hidden service awaiting publication: a name (used to derive the key
/// and thus the onion address) and a request handler.
#[derive(Clone)]
pub struct HiddenService {
    address: OnionAddress,
    seed: u64,
    handler: Handler,
}

impl HiddenService {
    /// Creates a hidden service whose onion address is derived from `name`
    /// (standing in for the service key pair).
    ///
    /// The handler is the service's application logic — in this workspace,
    /// a Dark Web forum answering page requests.
    pub fn create<F>(name: &str, seed: u64, handler: F) -> HiddenService
    where
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        HiddenService {
            address: OnionAddress::derive(name.as_bytes()),
            seed,
            handler: Arc::new(handler),
        }
    }

    /// The service's onion address.
    pub fn address(&self) -> OnionAddress {
        self.address
    }
}

impl fmt::Debug for HiddenService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HiddenService")
            .field("address", &self.address)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// The descriptor a hidden service publishes to the HS directories:
/// its address and chosen introduction points. Contains **no** location
/// information about the service host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceDescriptor {
    address: OnionAddress,
    introduction_points: Vec<RelayId>,
}

impl ServiceDescriptor {
    /// The service address.
    pub fn address(&self) -> OnionAddress {
        self.address
    }

    /// The introduction point relays.
    pub fn introduction_points(&self) -> &[RelayId] {
        &self.introduction_points
    }
}

/// The simulated Tor network: a relay consensus, hidden-service
/// directories, and the registry of running services.
pub struct TorNetwork {
    relays: Vec<Relay>,
    descriptors: HashMap<OnionAddress, ServiceDescriptor>,
    services: HashMap<OnionAddress, (Handler, Circuit)>,
}

impl TorNetwork {
    /// Builds a network with `n` relays (deterministic from `seed`).
    ///
    /// Roughly half the relays get the guard flag, a third the exit flag,
    /// a quarter the HSDir flag, with bandwidths spread over two orders of
    /// magnitude — a coarse sketch of the real consensus the paper's §II
    /// describes (≈7,000 relays).
    pub fn with_relays(n: usize, seed: u64) -> TorNetwork {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let relays = (0..n)
            .map(|i| {
                let flags = RelayFlags {
                    guard: rng.gen_bool(0.5),
                    exit: rng.gen_bool(0.33),
                    hsdir: rng.gen_bool(0.25),
                };
                Relay::new(
                    RelayId::new(rng.gen()),
                    format!("relay{i}"),
                    rng.gen_range(100..20_000),
                    flags,
                )
            })
            .collect();
        TorNetwork {
            relays,
            descriptors: HashMap::new(),
            services: HashMap::new(),
        }
    }

    /// The consensus relay list.
    pub fn relays(&self) -> &[Relay] {
        &self.relays
    }

    /// Number of published hidden services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Performs the hidden-service setup of §II.B: the service selects
    /// introduction points, opens a circuit to them, and uploads its
    /// descriptor to the responsible HS directories. Returns the onion
    /// address clients should use.
    ///
    /// # Errors
    ///
    /// Returns [`TorError::NotEnoughRelays`] when no circuit can be built.
    pub fn publish(&mut self, service: HiddenService) -> Result<OnionAddress, TorError> {
        let mut rng = StdRng::seed_from_u64(service.seed);
        // The service's own circuit towards its introduction points.
        let service_circuit = Circuit::select(&mut rng, &self.relays, &[])?;
        // Introduction points: up to three relays not already on the
        // service circuit.
        let intro: Vec<RelayId> = self
            .relays
            .iter()
            .filter(|r| !service_circuit.contains(r.id()))
            .take(3)
            .map(Relay::id)
            .collect();
        if intro.is_empty() {
            return Err(TorError::NotEnoughRelays {
                available: self.relays.len(),
                required: 4,
            });
        }
        let descriptor = ServiceDescriptor {
            address: service.address,
            introduction_points: intro,
        };
        self.descriptors.insert(service.address, descriptor);
        self.services
            .insert(service.address, (service.handler, service_circuit));
        Ok(service.address)
    }

    /// Removes a service (site taken down, as happened to Silk Road).
    pub fn take_down(&mut self, address: &OnionAddress) {
        self.services.remove(address);
        self.descriptors.remove(address);
    }

    /// Fetches a service descriptor from the HS directories, as the client
    /// does before connecting.
    ///
    /// # Errors
    ///
    /// Returns [`TorError::UnknownService`] for unpublished addresses.
    pub fn fetch_descriptor(&self, address: &OnionAddress) -> Result<&ServiceDescriptor, TorError> {
        self.descriptors
            .get(address)
            .ok_or_else(|| TorError::UnknownService {
                address: address.to_string(),
            })
    }

    /// Performs the client side of the rendezvous handshake of §II.B and
    /// returns an anonymous channel to the service:
    ///
    /// 1. fetch the descriptor from an HS directory;
    /// 2. select a rendezvous point and build a circuit to it;
    /// 3. tell an introduction point the rendezvous address;
    /// 4. the service builds its own circuit to the rendezvous point.
    ///
    /// # Errors
    ///
    /// * [`TorError::UnknownService`] — no descriptor published.
    /// * [`TorError::ServiceUnavailable`] — descriptor exists but the
    ///   service is gone.
    /// * [`TorError::NotEnoughRelays`] — circuit construction failed.
    pub fn connect(
        &self,
        address: &OnionAddress,
        client_seed: u64,
    ) -> Result<AnonymousChannel, TorError> {
        let descriptor = self.fetch_descriptor(address)?;
        let (handler, service_circuit) =
            self.services
                .get(address)
                .ok_or_else(|| TorError::ServiceUnavailable {
                    address: address.to_string(),
                })?;
        let mut rng = StdRng::seed_from_u64(client_seed ^ 0xC11E57);
        // Client circuit to the rendezvous point.
        let client_circuit = Circuit::select(&mut rng, &self.relays, &[])?;
        // The rendezvous point is the client circuit's exit.
        let rendezvous = client_circuit.exit();
        // The introduction point used to pass the rendezvous address along.
        let introduction = descriptor.introduction_points()[0];
        Ok(AnonymousChannel {
            address: *address,
            client_circuit,
            service_circuit: *service_circuit,
            rendezvous,
            introduction,
            handler: Arc::clone(handler),
            requests_served: 0,
        })
    }
}

impl fmt::Debug for TorNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TorNetwork")
            .field("relays", &self.relays.len())
            .field("services", &self.services.len())
            .finish()
    }
}

/// An established anonymous channel between a client and a hidden service.
///
/// The type deliberately exposes only circuit/relay metadata: there is no
/// client address and no service address to leak — mirroring the
/// information flow the real protocol guarantees.
pub struct AnonymousChannel {
    address: OnionAddress,
    client_circuit: Circuit,
    service_circuit: Circuit,
    rendezvous: RelayId,
    introduction: RelayId,
    handler: Handler,
    requests_served: u64,
}

impl AnonymousChannel {
    /// The onion address this channel reaches.
    pub fn address(&self) -> OnionAddress {
        self.address
    }

    /// The client-side circuit (client ↔ rendezvous point).
    pub fn client_circuit(&self) -> Circuit {
        self.client_circuit
    }

    /// The service-side circuit (service ↔ rendezvous point).
    pub fn service_circuit(&self) -> Circuit {
        self.service_circuit
    }

    /// The rendezvous relay both circuits meet at.
    pub fn rendezvous(&self) -> RelayId {
        self.rendezvous
    }

    /// The introduction point used during setup.
    pub fn introduction(&self) -> RelayId {
        self.introduction
    }

    /// Number of requests sent over this channel so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Sends a request through the circuit pair and returns the service's
    /// response.
    ///
    /// # Errors
    ///
    /// Currently infallible in the simulation, but returns `Result` to
    /// keep the contract of a network operation.
    pub fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>, TorError> {
        self.requests_served += 1;
        Ok((self.handler)(payload))
    }
}

impl fmt::Debug for AnonymousChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnonymousChannel")
            .field("address", &self.address)
            .field("rendezvous", &self.rendezvous)
            .field("requests_served", &self.requests_served)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_service(name: &str) -> HiddenService {
        HiddenService::create(name, 1, |req: &[u8]| {
            let mut out = b"echo:".to_vec();
            out.extend_from_slice(req);
            out
        })
    }

    #[test]
    fn publish_and_connect_round_trip() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let mut ch = net.connect(&addr, 99).unwrap();
        assert_eq!(ch.request(b"hi").unwrap(), b"echo:hi");
        assert_eq!(ch.requests_served(), 1);
        assert_eq!(ch.address(), addr);
    }

    #[test]
    fn unknown_service_errors() {
        let net = TorNetwork::with_relays(30, 7);
        let bogus = OnionAddress::derive(b"nothing-here");
        assert!(matches!(
            net.connect(&bogus, 1),
            Err(TorError::UnknownService { .. })
        ));
        assert!(net.fetch_descriptor(&bogus).is_err());
    }

    #[test]
    fn take_down_removes_service() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("silk-road")).unwrap();
        assert_eq!(net.service_count(), 1);
        net.take_down(&addr);
        assert_eq!(net.service_count(), 0);
        assert!(net.connect(&addr, 1).is_err());
    }

    #[test]
    fn descriptor_has_intro_points_and_no_location() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let desc = net.fetch_descriptor(&addr).unwrap();
        assert!(!desc.introduction_points().is_empty());
        assert!(desc.introduction_points().len() <= 3);
        assert_eq!(desc.address(), addr);
        // The descriptor serializes to address + relay ids only.
        let json = serde_json::to_string(desc).unwrap();
        assert!(!json.contains("ip"), "unexpected field in {json}");
    }

    #[test]
    fn circuits_meet_at_rendezvous_but_do_not_share_identity() {
        let mut net = TorNetwork::with_relays(50, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let ch = net.connect(&addr, 5).unwrap();
        // The rendezvous is the client circuit's exit.
        assert_eq!(ch.rendezvous(), ch.client_circuit().exit());
        // Client and service use different entry guards (their own).
        assert_ne!(ch.client_circuit().entry(), ch.service_circuit().entry());
    }

    #[test]
    fn distinct_clients_get_distinct_circuits() {
        let mut net = TorNetwork::with_relays(50, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let a = net.connect(&addr, 1).unwrap();
        let b = net.connect(&addr, 2).unwrap();
        assert_ne!(a.client_circuit(), b.client_circuit());
    }

    #[test]
    fn too_small_network_fails() {
        let mut net = TorNetwork::with_relays(2, 7);
        assert!(matches!(
            net.publish(echo_service("forum")),
            Err(TorError::NotEnoughRelays { .. })
        ));
    }

    #[test]
    fn addresses_are_stable_for_same_name() {
        let s1 = echo_service("forum");
        let s2 = echo_service("forum");
        assert_eq!(s1.address(), s2.address());
    }

    #[test]
    fn multiple_services_coexist() {
        let mut net = TorNetwork::with_relays(40, 3);
        let a = net.publish(echo_service("alpha")).unwrap();
        let b = net.publish(echo_service("beta")).unwrap();
        assert_ne!(a, b);
        assert_eq!(net.service_count(), 2);
        let mut cha = net.connect(&a, 1).unwrap();
        let mut chb = net.connect(&b, 1).unwrap();
        assert_eq!(cha.request(b"x").unwrap(), b"echo:x");
        assert_eq!(chb.request(b"y").unwrap(), b"echo:y");
    }

    #[test]
    fn debug_formats_do_not_leak_handler() {
        let mut net = TorNetwork::with_relays(30, 7);
        let addr = net.publish(echo_service("forum")).unwrap();
        let ch = net.connect(&addr, 1).unwrap();
        let s = format!("{ch:?}");
        assert!(s.contains("AnonymousChannel"));
        let s = format!("{net:?}");
        assert!(s.contains("TorNetwork"));
    }
}
