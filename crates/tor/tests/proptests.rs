//! Property-based tests for the Tor substrate.

use crowdtz_tor::{Circuit, HiddenService, OnionAddress, Relay, RelayFlags, RelayId, TorNetwork};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Onion addresses round-trip through display/parse for any key.
    #[test]
    fn onion_round_trip(key in proptest::collection::vec(any::<u8>(), 0..64)) {
        let addr = OnionAddress::derive(&key);
        let text = addr.to_string();
        let parsed: OnionAddress = text.parse().unwrap();
        prop_assert_eq!(parsed, addr);
        prop_assert_eq!(text.len(), 22);
    }

    /// Circuit selection always yields three distinct relays and honours
    /// guard flags, for any seed and consensus size.
    #[test]
    fn circuit_selection_invariants(seed in 0u64..10_000, n in 4usize..40) {
        let relays: Vec<Relay> = (0..n)
            .map(|i| {
                Relay::new(
                    RelayId::new(i as u64),
                    format!("r{i}"),
                    100 + (i as u32 * 37) % 5_000,
                    RelayFlags {
                        guard: i % 2 == 0,
                        exit: true,
                        hsdir: i % 4 == 0,
                    },
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = Circuit::select(&mut rng, &relays, &[]).unwrap();
        prop_assert_ne!(c.entry(), c.middle());
        prop_assert_ne!(c.middle(), c.exit());
        prop_assert_ne!(c.entry(), c.exit());
        prop_assert_eq!(c.entry().raw() % 2, 0, "entry must be a guard");
    }

    /// Publish/connect/request works for any network seed large enough.
    #[test]
    fn end_to_end_echo(seed in 0u64..2_000) {
        let mut net = TorNetwork::with_relays(25, seed);
        let svc = HiddenService::create("svc", seed, |req: &[u8]| req.iter().rev().copied().collect());
        let addr = net.publish(svc).unwrap();
        let mut ch = net.connect(&addr, seed ^ 1).unwrap();
        let resp = ch.request(b"abc").unwrap();
        prop_assert_eq!(resp, b"cba".to_vec());
        // Client and service entry guards differ (independent circuits).
        prop_assert_ne!(ch.client_circuit(), ch.service_circuit());
    }

    /// Address derivation is stable and collision-free over small key sets.
    #[test]
    fn no_collisions_in_batch(base in 0u32..1_000_000) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..50u32 {
            let addr = OnionAddress::derive(&(base + i).to_be_bytes());
            prop_assert!(seen.insert(addr));
        }
    }
}
