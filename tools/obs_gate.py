#!/usr/bin/env python3
"""Observability regression gate.

Compares the current run report (``obs.json``, the serialized
``crowdtz_obs::RunReport``) against the previous run's artifact and fails
when either

* a pipeline stage's wall time regressed more than ``THRESHOLD``x, or
* ``placement.exact_evals`` — the deterministic work counter behind the
  pruned EMD scan — grew more than ``THRESHOLD``x,

which catches both "someone made a stage slow" and "someone quietly
disabled the pruning or the placement cache".

With the optional durability pair (``BENCH_durability.json`` from the
bench bin), additionally fails when the warm ``open_durable`` restart or
the snapshot rotation regressed more than ``THRESHOLD``x, and — baseline
or not — when the replay-scaling invariant is broken: the long-suffix
run must replay more log records than the short-suffix run over the same
crawl (replay cost scales with the write-ahead log, not the crawl).

With the optional placement pair (``--placement base.json current.json``,
the bench bin's ``BENCH_placement.json``), additionally fails when the
batch kernel's single-thread users/sec on any zone grid (24/48/96)
dropped more than ``THRESHOLD``x against the baseline.

With the optional sharding pair (``--sharding base.json current.json``,
the bench bin's ``BENCH_sharding.json``), additionally fails when the
sequential ingest throughput at any shard count dropped more than
``THRESHOLD``x. Records are the sorted ``{shards, posts_per_sec}`` array
the bench emits.

With the optional ingest pair (``--ingest base.json current.json``, the
bench bin's ``BENCH_ingest.json``), additionally fails when concurrent
multi-writer ingest throughput at any (shards, writers) combination
dropped more than ``THRESHOLD``x. The check is clamp-aware: writer
counts above either run's ``host_cpus`` are skipped (an oversubscribed
writer pool measures scheduler noise, not the lock-per-shard engine),
so on a one-CPU host only the single-writer rows are gated. The skip is
symmetric — the clamp is ``min(base host_cpus, current host_cpus)`` —
and baseline rows missing a key (older bench layouts) are skipped
rather than crashing the gate.

With the optional serve pair (``--serve base.json current.json``, the
bench bin's ``BENCH_serve.json``), additionally fails when HTTP
requests/sec through the loopback service — ingest POSTs or
published-snapshot GETs at any client count — dropped more than
``THRESHOLD``x. Clamp-aware with the same symmetric rule: client counts
above ``min(base host_cpus, current host_cpus)`` are skipped.

With the optional window pair (``--window base.json current.json``, the
bench bin's ``BENCH_window.json``), additionally fails when any of the
signed-delta throughputs (plain ingest, windowed ingest, retraction
posts/sec) dropped more than ``THRESHOLD``x, or when the
bucket-expiring publish got slower by the same factor (skipped while
both runs are under ``MIN_STORE_SECS``, where it is allocator noise).

Usage: ``obs_gate.py baseline.json current.json``
       ``obs_gate.py baseline.json current.json base_durability.json current_durability.json``
       ``obs_gate.py ... --placement base_placement.json current_placement.json``
       ``obs_gate.py ... --sharding base_sharding.json current_sharding.json``
       ``obs_gate.py ... --ingest base_ingest.json current_ingest.json``
       ``obs_gate.py ... --serve base_serve.json current_serve.json``
       ``obs_gate.py ... --window base_window.json current_window.json``

Wall times are noisy on shared CI runners, so stages where *both* runs
spent less than ``MIN_STAGE_NS`` are ignored, and the exact-evals check
only applies once the counter is large enough to be meaningful. Stages
present in only one of the two reports are skipped: experiments come and
go, and a brand-new stage has no baseline to regress from.
"""

import json
import sys

THRESHOLD = 2.0
# Sub-5ms stages are scheduler noise, not signal.
MIN_STAGE_NS = 5_000_000
# Exact-evals drift below this is a config change, not a regression.
MIN_EVALS = 1_000
# Sub-10ms durable-store timings are filesystem noise, not signal.
MIN_STORE_SECS = 0.010
# Timed durability keys gated against the baseline.
DURABILITY_KEYS = ("warm_open_long_suffix_secs", "snapshot_rotation_secs")


def check_durability(base, cur, failures):
    """Gate BENCH_durability.json: timed regressions plus the
    replay-scales-with-the-log invariant. Returns comparisons made."""
    checked = 0
    short = cur.get("short_suffix_records", 0)
    long_ = cur.get("long_suffix_records", 0)
    checked += 1
    if long_ <= short:
        failures.append(
            f"durability: long suffix replayed {long_} records vs {short} short — "
            "replay no longer scales with the log suffix"
        )
    for key in DURABILITY_KEYS:
        prev_s, now_s = base.get(key), cur.get(key)
        if prev_s is None or now_s is None:
            continue
        if max(prev_s, now_s) < MIN_STORE_SECS:
            continue
        checked += 1
        ratio = now_s / max(prev_s, 1e-12)
        if ratio > THRESHOLD:
            failures.append(
                f"durability {key}: {prev_s * 1e3:.1f} ms -> "
                f"{now_s * 1e3:.1f} ms ({ratio:.2f}x)"
            )
    return checked


def check_placement(base, cur, failures):
    """Gate BENCH_placement.json: per-grid batch-kernel throughput must
    stay within THRESHOLD of the baseline. Returns comparisons made."""
    checked = 0
    base_grids = base.get("placement", {}).get("kernel_users_per_sec_by_grid", {})
    cur_grids = cur.get("placement", {}).get("kernel_users_per_sec_by_grid", {})
    for grid, now in sorted(cur_grids.items()):
        prev = base_grids.get(grid)
        if prev is None or prev <= 0 or now <= 0:
            continue
        checked += 1
        ratio = prev / now
        if ratio > THRESHOLD:
            failures.append(
                f"placement kernel, {grid}-zone grid: {prev:,.0f} users/s -> "
                f"{now:,.0f} users/s ({ratio:.2f}x slower)"
            )
    return checked


def check_sharding(base, cur, failures):
    """Gate BENCH_sharding.json: sequential ingest posts/sec per shard
    count must stay within THRESHOLD. Returns comparisons made."""
    checked = 0
    base_rows = {r["shards"]: r["posts_per_sec"] for r in base.get("ingest_posts_per_sec", [])}
    for row in cur.get("ingest_posts_per_sec", []):
        prev = base_rows.get(row["shards"])
        now = row["posts_per_sec"]
        if prev is None or prev <= 0 or now <= 0:
            continue
        checked += 1
        ratio = prev / now
        if ratio > THRESHOLD:
            failures.append(
                f"sharding ingest, {row['shards']} shards: {prev:,.0f} posts/s -> "
                f"{now:,.0f} posts/s ({ratio:.2f}x slower)"
            )
    return checked


def check_ingest(base, cur, failures):
    """Gate BENCH_ingest.json: concurrent multi-writer ingest posts/sec
    per (shards, writers) must stay within THRESHOLD. Clamp-aware: rows
    whose writer count exceeds either run's host_cpus are skipped — an
    oversubscribed pool measures the scheduler, not the engine. Returns
    comparisons made."""
    checked = 0
    measurable = min(base.get("host_cpus", 1), cur.get("host_cpus", 1))
    # Tolerate baseline rows from older bench layouts that lack a key —
    # a stale artifact cache must degrade to "nothing to compare", not
    # crash the gate asymmetrically.
    base_rows = {
        (r["shards"], r["writers"]): r["posts_per_sec"]
        for r in base.get("ingest_posts_per_sec", [])
        if "shards" in r and "writers" in r and "posts_per_sec" in r
    }
    for row in cur.get("ingest_posts_per_sec", []):
        if "shards" not in row or "writers" not in row or "posts_per_sec" not in row:
            continue
        if row["writers"] > max(measurable, 1):
            continue
        prev = base_rows.get((row["shards"], row["writers"]))
        now = row["posts_per_sec"]
        if prev is None or prev <= 0 or now <= 0:
            continue
        checked += 1
        ratio = prev / now
        if ratio > THRESHOLD:
            failures.append(
                f"concurrent ingest, {row['shards']} shards x {row['writers']} writers: "
                f"{prev:,.0f} posts/s -> {now:,.0f} posts/s ({ratio:.2f}x slower)"
            )
    return checked


SERVE_SERIES = ("ingest_requests_per_sec", "snapshot_requests_per_sec")


def check_serve(base, cur, failures):
    """Gate BENCH_serve.json: HTTP requests/sec per client count, for
    both the ingest-POST and snapshot-GET series, must stay within
    THRESHOLD. Clamp-aware and symmetric like check_ingest: client
    counts above ``min(base host_cpus, current host_cpus)`` are skipped,
    and incomplete rows on either side are ignored. Returns comparisons
    made."""
    checked = 0
    measurable = min(base.get("host_cpus", 1), cur.get("host_cpus", 1))
    for series in SERVE_SERIES:
        base_rows = {
            r["clients"]: r["requests_per_sec"]
            for r in base.get(series, [])
            if "clients" in r and "requests_per_sec" in r
        }
        for row in cur.get(series, []):
            if "clients" not in row or "requests_per_sec" not in row:
                continue
            if row["clients"] > max(measurable, 1):
                continue
            prev = base_rows.get(row["clients"])
            now = row["requests_per_sec"]
            if prev is None or prev <= 0 or now <= 0:
                continue
            checked += 1
            ratio = prev / now
            if ratio > THRESHOLD:
                failures.append(
                    f"serve {series}, {row['clients']} clients: "
                    f"{prev:,.0f} req/s -> {now:,.0f} req/s ({ratio:.2f}x slower)"
                )
    return checked


WINDOW_THROUGHPUT_KEYS = (
    "plain_ingest_posts_per_sec",
    "windowed_ingest_posts_per_sec",
    "retract_posts_per_sec",
)


def check_window(base, cur, failures):
    """Gate BENCH_window.json: signed-delta throughputs must stay within
    THRESHOLD of the baseline, and the bucket-expiring publish must not
    get THRESHOLDx slower. Missing keys on either side (older bench
    layouts) are skipped. Returns comparisons made."""
    checked = 0
    for key in WINDOW_THROUGHPUT_KEYS:
        prev, now = base.get(key), cur.get(key)
        if prev is None or now is None or prev <= 0 or now <= 0:
            continue
        checked += 1
        ratio = prev / now
        if ratio > THRESHOLD:
            failures.append(
                f"window {key}: {prev:,.0f} posts/s -> {now:,.0f} posts/s "
                f"({ratio:.2f}x slower)"
            )
    prev_s, now_s = base.get("publish_expiry_secs"), cur.get("publish_expiry_secs")
    if prev_s is not None and now_s is not None and max(prev_s, now_s) >= MIN_STORE_SECS:
        checked += 1
        ratio = now_s / max(prev_s, 1e-12)
        if ratio > THRESHOLD:
            failures.append(
                f"window publish_expiry_secs: {prev_s * 1e3:.1f} ms -> "
                f"{now_s * 1e3:.1f} ms ({ratio:.2f}x)"
            )
    return checked


def pop_pair(argv, flag):
    """Extract ``flag base cur`` from argv; returns (pair or None, argv)."""
    if flag not in argv:
        return None, argv
    i = argv.index(flag)
    pair = argv[i + 1 : i + 3]
    if len(pair) != 2:
        print(__doc__.strip(), file=sys.stderr)
        raise SystemExit(2)
    return pair, argv[:i] + argv[i + 3 :]


def main() -> int:
    argv = sys.argv[1:]
    placement_pair, argv = pop_pair(argv, "--placement")
    sharding_pair, argv = pop_pair(argv, "--sharding")
    ingest_pair, argv = pop_pair(argv, "--ingest")
    serve_pair, argv = pop_pair(argv, "--serve")
    window_pair, argv = pop_pair(argv, "--window")
    if len(argv) not in (2, 4):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as f:
        base = json.load(f)
    with open(argv[1]) as f:
        cur = json.load(f)

    failures = []
    checked = 0

    for pair, check in (
        (placement_pair, check_placement),
        (sharding_pair, check_sharding),
        (ingest_pair, check_ingest),
        (serve_pair, check_serve),
        (window_pair, check_window),
    ):
        if pair is None:
            continue
        with open(pair[0]) as f:
            pair_base = json.load(f)
        with open(pair[1]) as f:
            pair_cur = json.load(f)
        checked += check(pair_base, pair_cur, failures)

    if len(argv) == 4:
        with open(argv[2]) as f:
            base_durability = json.load(f)
        with open(argv[3]) as f:
            cur_durability = json.load(f)
        checked += check_durability(base_durability, cur_durability, failures)

    base_stages = {s["name"]: s["total_ns"] for s in base.get("stages", [])}
    for stage in cur.get("stages", []):
        prev_ns = base_stages.get(stage["name"])
        if prev_ns is None:
            continue
        now_ns = stage["total_ns"]
        if max(prev_ns, now_ns) < MIN_STAGE_NS:
            continue
        checked += 1
        ratio = now_ns / max(prev_ns, 1)
        if ratio > THRESHOLD:
            failures.append(
                f"stage {stage['name']}: {prev_ns / 1e6:.1f} ms -> "
                f"{now_ns / 1e6:.1f} ms ({ratio:.2f}x)"
            )

    prev_evals = base.get("metrics", {}).get("counters", {}).get("placement.exact_evals")
    now_evals = cur.get("metrics", {}).get("counters", {}).get("placement.exact_evals")
    if prev_evals is not None and now_evals is not None and now_evals >= MIN_EVALS:
        checked += 1
        ratio = now_evals / max(prev_evals, 1)
        if ratio > THRESHOLD:
            failures.append(
                f"placement.exact_evals: {prev_evals} -> {now_evals} ({ratio:.2f}x)"
            )

    if failures:
        print(f"obs gate: {len(failures)} regression(s) > {THRESHOLD}x", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"obs gate: ok ({checked} comparisons within {THRESHOLD}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
