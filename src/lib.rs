//! # crowdtz — Time-Zone Geolocation of Crowds in the Dark Web
//!
//! A production-quality Rust reproduction of *"Time-Zone Geolocation of
//! Crowds in the Dark Web"* (La Morgia, Mei, Raponi, Stefa — IEEE ICDCS
//! 2018).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`time`] — civil time, time zones, DST rules, region database.
//! * [`stats`] — EMD, Pearson correlation, Gaussian fitting, GMM-EM.
//! * [`synth`] — synthetic populations with realistic diurnal rhythms.
//! * [`tor`] — a minimal hidden-service substrate.
//! * [`forum`] — Dark Web forum simulator, scraper, offset calibration.
//! * [`core`] — the paper's method: profiles, placement, geolocation.
//! * [`serve`] — the multi-tenant HTTP analysis service over the
//!   concurrent engine ([`live::serve_monitors`] ties it to a monitor
//!   fleet).
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! repository `README.md` for an architecture overview.

#![forbid(unsafe_code)]

pub mod live;

pub use crowdtz_core as core;
pub use crowdtz_forum as forum;
pub use crowdtz_serve as serve;
pub use crowdtz_stats as stats;
pub use crowdtz_synth as synth;
pub use crowdtz_time as time;
pub use crowdtz_tor as tor;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crowdtz_core::*;
    pub use crowdtz_stats::{Distribution24, GaussianCurve};
    pub use crowdtz_time::{
        CivilDateTime, Date, Hemisphere, Region, RegionDb, RegionId, Timestamp, TzOffset, Zone,
    };
}
