//! Live concurrent monitoring: N monitors, one shared engine.
//!
//! [`run_concurrent`] is the deployment shape the paper's measurement
//! campaign implies — several monitors (one per mirror, per board, or
//! per time window) scraping in parallel and feeding a single
//! [`ConcurrentStreamingPipeline`]. Each monitor gets its own thread
//! and its own [`IngestWriter`](crowdtz_core::IngestWriter); poll
//! batches route across the engine's shards by user hash, so monitors
//! observing different crowds almost never contend, and a dashboard
//! thread can call
//! [`snapshot`](ConcurrentStreamingPipeline::snapshot) throughout
//! without slowing the crawl down.
//!
//! Determinism carries over from the engine: once every monitor has
//! finished, a [`publish`](ConcurrentStreamingPipeline::publish) is
//! byte-identical to feeding the same polls through one sequential
//! `StreamingPipeline` — regardless of how the threads interleaved.
//!
//! ```no_run
//! use crowdtz::live::run_concurrent;
//! use crowdtz_core::{ConcurrentStreamingPipeline, GeolocationPipeline};
//! # fn monitors() -> Vec<crowdtz_forum::Monitor> { Vec::new() }
//! # fn window() -> (crowdtz_time::Timestamp, crowdtz_time::Timestamp) { todo!() }
//!
//! let engine = ConcurrentStreamingPipeline::new(GeolocationPipeline::default());
//! let mut fleet = monitors();
//! let (from, to) = window();
//! run_concurrent(&engine, &mut fleet, from, to, 3_600).unwrap();
//! let report = engine.publish().unwrap().report().clone();
//! ```

use std::fmt;
use std::sync::Arc;

use crowdtz_core::{ConcurrentStreamingPipeline, CoreError, TenantConfig, TenantError};
use crowdtz_forum::{ForumError, Monitor};
use crowdtz_serve::{serve, ServeConfig, ServerHandle};
use crowdtz_time::Timestamp;

/// What can go wrong while monitors feed the shared engine.
#[derive(Debug)]
pub enum LiveError {
    /// A monitor's scrape failed (transport, protocol, …).
    Forum(ForumError),
    /// The engine rejected an ingest — only possible in durable mode,
    /// when the write-ahead append fails.
    Core(CoreError),
    /// The HTTP service could not bind its socket.
    Serve(std::io::Error),
    /// The forum could not be registered as a tenant.
    Tenant(TenantError),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Forum(e) => write!(f, "monitor failed: {e}"),
            LiveError::Core(e) => write!(f, "ingest failed: {e}"),
            LiveError::Serve(e) => write!(f, "serve failed: {e}"),
            LiveError::Tenant(e) => write!(f, "tenant failed: {e}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Forum(e) => Some(e),
            LiveError::Core(e) => Some(e),
            LiveError::Serve(e) => Some(e),
            LiveError::Tenant(e) => Some(e),
        }
    }
}

impl From<ForumError> for LiveError {
    fn from(e: ForumError) -> LiveError {
        LiveError::Forum(e)
    }
}

impl From<CoreError> for LiveError {
    fn from(e: CoreError) -> LiveError {
        LiveError::Core(e)
    }
}

/// Runs every monitor over `[from, to]` on its own thread, feeding one
/// shared engine. Returns when all monitors finish (or have failed).
///
/// Each thread registers its own writer, so every poll batch is one
/// gate-read hold (and, in durable mode, one write-ahead log record).
/// A monitor that fails stops scraping; after its first ingest error a
/// writer also stops applying further batches, so the engine never
/// holds state its durable log is missing. Other monitors are *not*
/// interrupted — partial progress from healthy monitors is kept, which
/// matches how a real crawl degrades.
///
/// # Errors
///
/// The first error in monitor order: [`LiveError::Forum`] when a scrape
/// fails, [`LiveError::Core`] when a durable append fails.
pub fn run_concurrent(
    engine: &ConcurrentStreamingPipeline,
    monitors: &mut [Monitor],
    from: Timestamp,
    to: Timestamp,
    interval_secs: i64,
) -> Result<(), LiveError> {
    let outcomes: Vec<Result<(), LiveError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = monitors
            .iter_mut()
            .map(|monitor| {
                let writer = engine.writer();
                scope.spawn(move || -> Result<(), LiveError> {
                    let mut ingest_err: Option<CoreError> = None;
                    monitor.run_batched(from, to, interval_secs, |batch| {
                        if ingest_err.is_none() {
                            // The borrowed variant hands the engine
                            // `&str` views of the poll buffer instead of
                            // cloning every author name per batch.
                            let refs: Vec<(&str, Timestamp)> = batch
                                .iter()
                                .map(|(user, ts)| (user.as_str(), *ts))
                                .collect();
                            if let Err(e) = writer.ingest_posts_ref(&refs) {
                                ingest_err = Some(e);
                            }
                        }
                    })?;
                    match ingest_err {
                        Some(e) => Err(e.into()),
                        None => Ok(()),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("monitor thread panicked"))
            .collect()
    });
    outcomes.into_iter().collect()
}

/// Crawls a forum with a monitor fleet, then serves the analysis over
/// HTTP: one tenant named `forum`, its engine fed by [`run_concurrent`],
/// one publish so `GET …/snapshot` answers immediately, and the running
/// [`ServerHandle`] returned for the caller to hold (and eventually
/// [`shutdown`](ServerHandle::shutdown)).
///
/// This is the whole deployment story in one call: the paper's
/// measurement campaign as a monitoring *service* rather than a batch
/// run. New deltas can keep flowing in over `POST …/ingest` after this
/// returns — the initial crawl is just the warm-up corpus.
///
/// # Errors
///
/// [`LiveError::Serve`] when the bind fails, [`LiveError::Tenant`] when
/// the forum name is rejected, plus everything [`run_concurrent`] can
/// return. An engine with no placeable users yet publishes nothing
/// (snapshot stays 404) but is not an error.
pub fn serve_monitors(
    config: ServeConfig,
    forum: &str,
    tenant: TenantConfig,
    monitors: &mut [Monitor],
    from: Timestamp,
    to: Timestamp,
    interval_secs: i64,
) -> Result<ServerHandle, LiveError> {
    let handle = serve(config, None).map_err(LiveError::Serve)?;
    let observer = Arc::clone(handle.service().observer());
    let tenant = handle
        .service()
        .registry()
        .create(forum, tenant, Some(observer))
        .map_err(LiveError::Tenant)?;
    run_concurrent(tenant.engine(), monitors, from, to, interval_secs)?;
    // Windowed tenants publish through the window front so the crawl's
    // first cut already expires stale buckets and seeds the trajectory.
    let cut = match tenant.window() {
        Some(window) => window.publish(),
        None => tenant.engine().publish(),
    };
    match cut {
        Ok(_) | Err(CoreError::EmptyCrowd | CoreError::InsufficientActivity { .. }) => Ok(handle),
        Err(e) => Err(LiveError::Core(e)),
    }
}
