//! Chaos crawl: survive a faulty Tor network, resume an interrupted
//! dump from a checkpoint, and analyze a partial dump honestly.
//!
//! ```text
//! cargo run --example chaos_crawl              # 20% fault rate, seed 42
//! cargo run --example chaos_crawl -- 35 7      # 35% fault rate, seed 7
//! ```
//!
//! 1. Publish an Italian forum on a Tor substrate where a seeded
//!    `FaultPlan` makes ~rate% of requests fail (circuit collapses,
//!    relay churn, timeouts, truncated/corrupted responses, hiccups).
//! 2. Crawl it with the default `RetryPolicy` — the dump completes
//!    despite the chaos, and the report says what it absorbed.
//! 3. Crank the fault rate past the retry budget, crawl with a tight
//!    policy, and resume from the serialized checkpoint after every
//!    interruption until the dump completes.
//! 4. Run a mid-crawl partial dump through the pipeline: the report is
//!    marked partial and its confidence widened by `1/√coverage`.

use crowdtz::core::{GenericProfile, GeolocationPipeline};
use crowdtz::forum::{
    CrawlCheckpoint, CrowdComponent, ForumHost, ForumSpec, RetryPolicy, Scraper, SimulatedForum,
};
use crowdtz::time::{zone_label, CivilDateTime, Timestamp};
use crowdtz::tor::{FaultPlan, FaultRates, TorNetwork};

fn parse_args() -> Result<(f64, u64), String> {
    let mut args = std::env::args().skip(1);
    let rate_pct: u32 = match args.next() {
        Some(v) => v
            .parse()
            .map_err(|e| format!("bad fault rate {v:?}: {e}"))?,
        None => 20,
    };
    if rate_pct > 45 {
        return Err(format!(
            "fault rate {rate_pct}% out of range (0..=45): past ~45% mixed \
             faults even generous retry budgets stop converging"
        ));
    }
    let seed: u64 = match args.next() {
        Some(v) => v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?,
        None => 42,
    };
    if let Some(extra) = args.next() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    Ok((f64::from(rate_pct) / 100.0, seed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rate, seed) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("usage: chaos_crawl [fault_rate_pct] [seed]");
            return Err(e.into());
        }
    };

    // 1. An Italian forum (ground truth UTC+1) behind a faulty network.
    let spec = ForumSpec::new("Chaos Club", vec![CrowdComponent::new("italy", 1.0)], 60).seed(seed);
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(40, seed);
    network.set_fault_plan(FaultPlan::new(seed, FaultRates::mixed(rate)));
    let address = network.publish(ForumHost::new(forum).into_hidden_service(seed))?;
    println!(
        "published {address} on a network injecting ~{:.0}% mixed faults (seed {seed})\n",
        rate * 100.0
    );

    // 2. A default-policy crawl absorbs the weather and (usually)
    //    finishes in one go. Past ~30% the 5-attempt budget starts
    //    losing requests — a legitimate outcome the resume phase below
    //    exists to handle, so narrate it rather than abort.
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    let mut scraper =
        Scraper::new(network.connect(&address, seed)?).retry_policy(RetryPolicy::default());
    let crawl_clock = Timestamp::from_civil_utc(CivilDateTime::new(2017, 1, 10, 9, 0, 0)?);
    let reference = match scraper.calibrated_dump(crawl_clock) {
        Ok(report) => {
            let stats = report.stats();
            println!("{report}");
            println!(
                "coverage {:.0}%: {} faults absorbed, {} circuit rebuilds, {:.1} s simulated backoff\n",
                report.coverage() * 100.0,
                stats.faults_absorbed,
                stats.circuit_rebuilds,
                stats.backoff_ms as f64 / 1000.0,
            );
            let geo = pipeline.analyze_partial(&report.utc_traces(), report.coverage())?;
            println!(
                "geolocated (full dump): {} — partial: {}\n",
                zone_label(geo.single_fit().time_zone()),
                geo.is_partial(),
            );
            Some(report)
        }
        Err(err) => {
            println!("default retry budget exhausted mid-crawl ({err}) —");
            println!("this is exactly what checkpoint/resume is for:\n");
            None
        }
    };

    // 3. Past the retry budget: a tight policy at a nastier rate gets
    //    interrupted, and each interruption hands back a checkpoint. We
    //    serialize/deserialize it every time — the crawl would survive a
    //    process restart the same way.
    let storm = (rate * 1.5).min(0.45);
    network.set_fault_plan(FaultPlan::new(seed ^ 0xBAD, FaultRates::mixed(storm)));
    let tight = RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 250,
        max_backoff_ms: 5_000,
        jitter_seed: seed,
    };
    println!(
        "storm: ~{:.0}% faults against a {}-attempt budget",
        storm * 100.0,
        tight.max_attempts
    );
    let mut resumer = Scraper::new(network.connect(&address, seed ^ 1)?).retry_policy(tight);
    let mut checkpoint = CrawlCheckpoint::start();
    let mut interruptions = 0u32;
    let mut partial_shown = false;
    let resumed = loop {
        match resumer.resume_dump(checkpoint) {
            Ok(done) => break done,
            Err(interrupt) => {
                interruptions += 1;
                if interruptions <= 3 {
                    println!("  {interrupt}");
                } else if interruptions == 4 {
                    println!("  …");
                }

                // 4. A mid-crawl snapshot flows through the pipeline as
                //    an honestly-partial report.
                let partial = interrupt.checkpoint.partial_report();
                if !partial_shown && partial.coverage() > 0.2 {
                    partial_shown = true;
                    let geo =
                        pipeline.analyze_partial(&partial.utc_traces(), partial.coverage())?;
                    println!("\nmid-crawl analysis:\n{}\n", geo.render());
                }

                let persisted = serde_json::to_string(&interrupt.checkpoint)?;
                checkpoint = serde_json::from_str(&persisted)?;
            }
        }
    };
    println!("\nresumed to completion after {interruptions} interruptions: {resumed}");
    match reference {
        Some(report) => println!(
            "coverage {:.0}%, traces identical to the uninterrupted dump: {}",
            resumed.coverage() * 100.0,
            *resumed.utc_traces() == *report.server_traces(),
        ),
        None => {
            let geo = pipeline.analyze_partial(&resumed.utc_traces(), resumed.coverage())?;
            println!(
                "coverage {:.0}%, geolocated despite the storm: {}",
                resumed.coverage() * 100.0,
                zone_label(geo.single_fit().time_zone()),
            );
        }
    }
    Ok(())
}
