//! Deriving the generic profile from ground-truth data (§IV).
//!
//! ```text
//! cargo run --example build_generic_profile
//! ```
//!
//! The paper builds its generic profile from a Twitter dataset of users
//! with verified origin: per-region profiles in local time (DST and
//! holidays handled), averaged. This example does the same on the
//! synthetic Table I dataset, shows the pairwise-Pearson consistency that
//! justifies the whole construction, and compares the result with the
//! built-in reference curve.

use crowdtz::core::{CrowdProfile, GenericProfile, ProfileBuilder};
use crowdtz::stats::{pearson, pearson_matrix, render_bars};
use crowdtz::synth::TwitterDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scaled-down Table I dataset (~2% of the paper's volumes).
    let dataset = TwitterDataset::builder().scale(0.05).seed(42).build();
    println!("{dataset}\n");

    // 2. Per-region crowd profiles in *local* civil time.
    let mut aligned = Vec::new();
    let mut rows = Vec::new();
    for (region, traces) in dataset.regions() {
        let profiles = ProfileBuilder::new()
            .min_posts(30)
            .local_zone(region.zone(), Some(region.holidays().clone()))
            .build(traces);
        if let Ok(crowd) = CrowdProfile::aggregate(&profiles) {
            println!(
                "{:<18} {:>4} active users, local peak {:02}h",
                region.name(),
                crowd.members(),
                crowd.distribution().peak_hour()
            );
            rows.push(crowd.distribution().as_slice().to_vec());
            aligned.push(crowd);
        }
    }

    // 3. §IV's consistency claim: aligned profiles correlate at ≈ 0.9.
    let (_, mean_r) = pearson_matrix(&rows)?;
    println!("\nmean pairwise Pearson across regions: {mean_r:.3} (paper: ≈ 0.9)");

    // 4. The derived generic profile vs the built-in reference.
    let derived = GenericProfile::from_aligned(&aligned)?;
    println!(
        "\n{}",
        render_bars(
            "derived generic profile (local hours)",
            derived.distribution().as_slice()
        )
    );
    let r = pearson(
        derived.distribution().as_slice(),
        GenericProfile::reference().distribution().as_slice(),
    )?;
    println!("correlation with the built-in reference curve: {r:.3}");
    Ok(())
}
