//! §VII countermeasures: what a forum can (and cannot) do about crowd
//! geolocation.
//!
//! ```text
//! cargo run --example countermeasures
//! ```
//!
//! Scenario 1 — the forum hides timestamps: the dump crawl collects
//! nothing, but a monitor that polls the forum and timestamps new posts
//! itself restores the attack.
//!
//! Scenario 2 — the forum shows timestamps with a random delay: small
//! delays do not help; only delays of several hours start to blur the
//! placement, at a severe usability cost.

use crowdtz::core::{GenericProfile, GeolocationPipeline};
use crowdtz::forum::{
    CrowdComponent, ForumHost, ForumSpec, Scraper, SimulatedForum, TimestampPolicy,
};
use crowdtz::time::{CivilDateTime, Date, Timestamp};
use crowdtz::tor::TorNetwork;

fn italian_forum(policy: TimestampPolicy, seed: u64) -> ForumSpec {
    ForumSpec::new(
        "Hardened Forum",
        vec![CrowdComponent::new("italy", 1.0)],
        40,
    )
    .posts_per_user_per_day(0.6)
    .policy(policy)
    .seed(seed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());

    // --- Scenario 1: hidden timestamps -----------------------------------
    println!("scenario 1: forum strips all timestamps");
    let forum = SimulatedForum::generate(&italian_forum(TimestampPolicy::Hidden, 5));
    let mut network = TorNetwork::with_relays(50, 5);
    let address = network.publish(ForumHost::new(forum).into_hidden_service(5))?;

    let mut scraper = Scraper::new(network.connect(&address, 1)?);
    let dump = scraper.dump()?;
    println!(
        "  dump crawl: {} posts seen, {} with timestamps → attack blind",
        dump.posts_seen(),
        dump.posts_seen() - dump.hidden_posts()
    );

    let mut monitor = Scraper::new(network.connect(&address, 2)?).into_monitor();
    let from = Timestamp::from_civil_utc(CivilDateTime::midnight(Date::new(2016, 1, 1)?));
    let to = Timestamp::from_civil_utc(CivilDateTime::midnight(Date::new(2017, 1, 1)?));
    let observed = monitor.run(from, to, 1_800)?; // 30-minute polls
    let report = pipeline.analyze(&observed)?;
    println!(
        "  monitor mode: {} posts self-timestamped → crowd placed at {} (truth: UTC+1)\n",
        observed.total_posts(),
        report.single_fit().time_zone()
    );

    // --- Scenario 2: random display delays --------------------------------
    println!("scenario 2: random display delay sweep (crowd at UTC+1)");
    let crawl_clock = Timestamp::from_civil_utc(CivilDateTime::new(2017, 1, 10, 0, 0, 0)?);
    for (label, max_delay) in [
        ("none", 0u32),
        ("1h", 3_600),
        ("6h", 21_600),
        ("12h", 43_200),
    ] {
        let policy = if max_delay == 0 {
            TimestampPolicy::Visible
        } else {
            TimestampPolicy::DelayedUniform {
                max_delay_secs: max_delay,
            }
        };
        let forum = SimulatedForum::generate(&italian_forum(policy, 6));
        let mut network = TorNetwork::with_relays(50, u64::from(max_delay) + 11);
        let address = network.publish(ForumHost::new(forum).into_hidden_service(6))?;
        let mut scraper = Scraper::new(network.connect(&address, 3)?);
        let scrape = scraper.calibrated_dump(crawl_clock)?;
        let report = pipeline.analyze(&scrape.utc_traces())?;
        let c = report.mixture().dominant().expect("one component");
        println!(
            "  max delay {label:>4}: dominant component mean {:+.2} σ {:.2}",
            c.mean, c.sigma
        );
    }
    println!(
        "\nAs §VII argues: to be effective the delay must reach hours,\n\
         by which point the forum is barely usable."
    );
    Ok(())
}
