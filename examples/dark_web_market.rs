//! The full Dark Web measurement path on a Dream-Market-like forum.
//!
//! ```text
//! cargo run --example dark_web_market
//! ```
//!
//! 1. Simulate a marketplace forum whose crowd is mostly European with a
//!    North-American component (the paper's Fig. 11 finding).
//! 2. Publish it as a hidden service on the in-process Tor substrate.
//! 3. Connect anonymously, calibrate the server clock by posting to the
//!    Welcome thread (§V), and dump all posts.
//! 4. Geolocate the crowd and print the uncovered components.

use crowdtz::core::{GenericProfile, GeolocationPipeline};
use crowdtz::forum::{ForumHost, ForumSpec, Scraper, SimulatedForum};
use crowdtz::time::{CivilDateTime, Timestamp};
use crowdtz::tor::TorNetwork;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The forum: Dream Market's crowd composition, at half size.
    let spec = ForumSpec::dream_market().scaled(0.5);
    let forum = SimulatedForum::generate(&spec);
    println!("simulated: {forum}");

    // 2. Hidden-service publication.
    let mut network = TorNetwork::with_relays(60, 99);
    let host = ForumHost::new(forum.clone());
    let address = network.publish(host.into_hidden_service(1))?;
    println!("published at {address}");

    // 3. Anonymous scrape. Note the channel: neither endpoint ever sees
    //    the other's identity — only the rendezvous relay.
    let channel = network.connect(&address, 1234)?;
    println!(
        "connected via rendezvous {} (client circuit {})",
        channel.rendezvous(),
        channel.client_circuit()
    );
    let mut scraper = Scraper::new(channel);
    let crawl_clock = Timestamp::from_civil_utc(CivilDateTime::new(2017, 1, 10, 9, 0, 0)?);
    let scrape = scraper.calibrated_dump(crawl_clock)?;
    println!(
        "scraped {} posts from {} users; measured server offset {} s\n",
        scrape.posts_seen(),
        scrape.server_traces().len(),
        scrape.offset_secs().unwrap_or(0),
    );

    // 4. Geolocation.
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    let report = pipeline.analyze(&scrape.utc_traces())?;
    println!("{report}\n");
    for (zone, weight) in report.multi_fit().time_zones() {
        println!(
            "  component: {} with {:.0}% of the crowd",
            crowdtz::time::zone_label(zone),
            weight * 100.0
        );
    }
    println!("\n(paper's finding: mostly European — UTC+1 — with a UTC−6 component)");
    Ok(())
}
