//! §V.F in action: telling the hemisphere of UTC−3 users apart.
//!
//! ```text
//! cargo run --example hemisphere_hunt
//! ```
//!
//! UTC−3 covers Greenland, a sliver of Canada, and half of South America —
//! placement alone cannot separate them. Daylight saving can: southern
//! regions shift their clocks October→February, northern ones
//! March→October. This example builds two UTC−3 crowds (Southern Brazil
//! vs Argentina, which observed no DST in 2016) and one UTC+1 German
//! control, and classifies their most active users.

use crowdtz::core::hemisphere::{classify_most_active, tally, HemisphereConfig};
use crowdtz::synth::PopulationSpec;
use crowdtz::time::RegionDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = RegionDb::extended();
    let config = HemisphereConfig::default();

    for (region, blurb) in [
        ("brazil-south", "Southern Brazil — DST Oct→Feb (southern)"),
        ("argentina", "Argentina — no DST in 2016"),
        ("germany", "Germany — DST Mar→Oct (northern control)"),
    ] {
        let traces = PopulationSpec::new(db.require(&region.into())?.clone())
            .users(40)
            .posts_per_day(1.5)
            .seed(13)
            .generate();
        let verdicts = classify_most_active(&traces, 5, &config);
        let (n, s, u) = tally(&verdicts);
        println!("{blurb}");
        println!("  top-5 verdicts: {n} northern, {s} southern, {u} unknown/no-DST");
        for (user, v) in &verdicts {
            println!("    {user}: {v}");
        }
        println!();
    }
    println!(
        "The paper used exactly this signal to place part of the Pedo Support\n\
         Community crowd in Southern Brazil / Paraguay rather than Canada."
    );
    Ok(())
}
