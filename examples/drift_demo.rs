//! Longitudinal drift demo: a dark-web crowd migrates half-way around
//! the world, and the windowed pipeline's drift tracker catches it.
//!
//! ```text
//! cargo run --release --example drift_demo [users] [rounds] [switch_round]
//! ```
//!
//! Synthesizes a [`MigrationSpec`] fixture — the same user ids posting
//! round after round, generated in New York (UTC−5) up to the switch
//! round and in China (UTC+8) from it onward — and feeds each round to a
//! [`WindowedPipeline`] with one bucket per round and a two-bucket
//! sliding window. Every publish retracts the expired bucket, re-places
//! the surviving crowd, and appends one [`DriftPoint`] to the
//! trajectory: the zone-composition histogram, its L1 shift against the
//! trailing mean, and whether that shift crossed the change-point
//! threshold. The demo prints the trajectory as a tiny timeline and
//! checks the first flagged bucket lands within one bucket of the true
//! switch.
//!
//! [`DriftPoint`]: crowdtz::core::DriftPoint
//! [`MigrationSpec`]: crowdtz::synth::MigrationSpec
//! [`WindowedPipeline`]: crowdtz::core::WindowedPipeline

use crowdtz::core::{
    ConcurrentStreamingPipeline, GeolocationPipeline, WindowConfig, WindowedPipeline, ZoneGrid,
};
use crowdtz::synth::MigrationSpec;
use crowdtz::time::{zone_label, RegionDb, Timestamp, TzOffset};

fn main() {
    let mut args = std::env::args().skip(1);
    let users: usize = args
        .next()
        .map(|a| a.parse().expect("users must be an integer"))
        .unwrap_or(24);
    let rounds: usize = args
        .next()
        .map(|a| a.parse().expect("rounds must be an integer"))
        .unwrap_or(8);
    let switch: usize = args
        .next()
        .map(|a| a.parse().expect("switch_round must be an integer"))
        .unwrap_or(rounds / 2);

    let db = RegionDb::extended();
    let spec = MigrationSpec::new(
        db.get(&"new-york".into()).unwrap().clone(),
        db.get(&"china".into()).unwrap().clone(),
    )
    .users(users)
    .rounds(rounds)
    .switch_round(switch)
    .round_days(7)
    .seed(11)
    .posts_per_day(3.0);

    println!(
        "{users} users, {rounds} rounds of 7 days; New York (UTC−5) → China (UTC+8) at round {switch}"
    );

    let engine =
        ConcurrentStreamingPipeline::new(GeolocationPipeline::default().min_posts(1).threads(2));
    let window = WindowedPipeline::new(
        engine,
        WindowConfig {
            bucket_secs: spec.round_secs(),
            window_buckets: 2,
            drift_threshold: 1.2,
            drift_history: 3,
        },
        None,
    );

    let writer = window.engine().writer();
    for round in 0..spec.round_count() {
        let posts = spec.round_posts(round);
        let refs: Vec<(&str, Timestamp)> = posts.iter().map(|(u, t)| (u.as_str(), *t)).collect();
        window.ingest_posts(&writer, &refs).expect("ingest round");
        window.publish().expect("publish round");
    }

    println!("\ntrajectory (one point per publish, window = last 2 rounds):");
    let grid = ZoneGrid::Hourly;
    for point in window.trajectory() {
        let dominant = point
            .dominant()
            .map(|(zone, f)| {
                let offset = TzOffset::from_minutes(grid.minutes_of(zone)).expect("grid offset");
                format!("{} holds {:.0}%", zone_label(offset), f * 100.0)
            })
            .unwrap_or_else(|| "empty crowd".to_owned());
        println!(
            "  bucket {}  shift {:.2}  {}  {}",
            point.bucket(),
            point.shift(),
            if point.is_changepoint() {
                "<< CHANGE-POINT"
            } else {
                "              "
            },
            dominant
        );
    }

    let trajectory = window.trajectory();
    let truth = spec
        .round_start(spec.ground_truth_round())
        .days_since_epoch()
        * 86_400
        / spec.round_secs();
    let first = trajectory
        .iter()
        .find(|p| p.is_changepoint())
        .expect("the migration must be flagged");
    println!(
        "\nfirst change-point at bucket {} — ground truth bucket {truth} (|Δ| = {})",
        first.bucket(),
        (first.bucket() - truth).abs()
    );
    assert!(
        (first.bucket() - truth).abs() <= 1,
        "drift tracker missed the migration window"
    );
    println!("flagged within one bucket of the true switch ✓");
}
