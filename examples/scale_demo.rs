//! Scale demo: geolocating a 100 000-user crowd through the placement
//! engine, sequential vs parallel.
//!
//! ```text
//! cargo run --release --example scale_demo [users]
//! ```
//!
//! Synthesizes a two-region crowd (60% Tokyo UTC+9, 40% São Paulo UTC−3)
//! directly as activity profiles — the crawl and trace-building stages are
//! not what this demo measures — then runs the full polish → place → fit
//! pipeline twice: once on 1 thread, once on every available core
//! (`CROWDTZ_THREADS` overrides). The two reports are byte-identical; only
//! the wall-clock differs.

use std::time::Instant;

use crowdtz::core::{
    default_threads, ActivityProfile, GenericProfile, GeolocationPipeline, GeolocationReport,
};
use crowdtz::time::{Timestamp, TzOffset, UserTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `users` profiles from the reference generic profile shifted to
/// each user's home zone: 60% at UTC+9, 40% at UTC−3, 40 posts each.
fn synthesize(users: usize, seed: u64) -> Vec<ActivityProfile> {
    let generic = GenericProfile::reference();
    let regions = [(9i32, 6usize), (-3, 4)]; // (zone, weight in tenths)
    let tables: Vec<(i32, [u64; 24])> = regions
        .iter()
        .map(|&(zone, _)| {
            let profile = generic.zone_profile(zone);
            let mut cum = [0u64; 24];
            let mut acc = 0u64;
            for (h, c) in cum.iter_mut().enumerate() {
                acc += (profile.as_slice()[h] * 1e6) as u64 + 1;
                *c = acc;
            }
            (zone, cum)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..users)
        .map(|i| {
            let (_, table) = &tables[usize::from(i % 10 >= regions[0].1)];
            let total = table[23];
            let posts: Vec<Timestamp> = (0..40)
                .map(|day: i64| {
                    let r = rng.gen_range(0..total);
                    let hour = table.iter().position(|&c| r < c).unwrap_or(23);
                    Timestamp::from_secs(day * 86_400 + hour as i64 * 3_600)
                })
                .collect();
            ActivityProfile::from_trace_offset(
                &UserTrace::new(format!("u{i:06}"), posts),
                TzOffset::UTC,
            )
            .expect("non-empty trace")
        })
        .collect()
}

fn run(profiles: Vec<ActivityProfile>, threads: usize) -> (GeolocationReport, f64) {
    let pipeline = GeolocationPipeline::default().threads(threads);
    let start = Instant::now();
    let report = pipeline
        .analyze_profiles(profiles, 1.0)
        .expect("pipeline runs");
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("users must be an integer"))
        .unwrap_or(100_000);
    println!("synthesizing {users} users (60% UTC+9, 40% UTC-3)…");
    let profiles = synthesize(users, 42);

    let (sequential, seq_s) = run(profiles.clone(), 1);
    let threads = default_threads();
    let (parallel, par_s) = run(profiles, threads);

    println!("sequential (1 thread):     {seq_s:.2} s");
    println!(
        "parallel   ({threads} thread(s)): {par_s:.2} s  ({:.2}x)",
        seq_s / par_s
    );
    assert_eq!(
        sequential.histogram().fractions(),
        parallel.histogram().fractions(),
        "thread count changed the numbers — determinism invariant broken"
    );

    println!(
        "\n{} users classified, {} flat profiles removed",
        parallel.users_classified(),
        parallel.flat_removed()
    );
    println!("recovered components:");
    for (zone, weight) in parallel.multi_fit().time_zones() {
        println!(
            "  {:>3.0}% of the crowd in {}",
            weight * 100.0,
            crowdtz::time::zone_label(zone)
        );
    }
}
