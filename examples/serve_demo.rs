//! Serving demo: the analysis engine as a multi-tenant HTTP service.
//!
//! ```text
//! cargo run --release --example serve_demo [users]
//! ```
//!
//! Starts `crowdtz-serve` in-process on an ephemeral loopback port,
//! creates two tenants over HTTP — a quarter-hour-grid market and an
//! hourly-grid forum — and pushes a synthetic two-region crowd through
//! `POST /v1/tenants/{forum}/ingest` exactly as a monitor fleet would.
//! Then it pulls `…/snapshot?publish=1` and `…/drift` back off the wire
//! and proves the service invariant end to end: the snapshot body is
//! byte-identical to what an in-process engine publishes after the same
//! deltas.

use crowdtz::core::{ConcurrentStreamingPipeline, GenericProfile, GeolocationPipeline, ZoneGrid};
use crowdtz::serve::{serve, HttpClient, ServeConfig};
use crowdtz::time::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

/// Synthesizes `users` deltas from the reference generic profile: 60%
/// at UTC+9, 40% at UTC−3, 30 posts each.
fn synthesize(users: usize, seed: u64) -> Vec<(String, Vec<Timestamp>)> {
    let generic = GenericProfile::reference();
    let regions = [(9i32, 6usize), (-3, 4)];
    let tables: Vec<[u64; 24]> = regions
        .iter()
        .map(|&(zone, _)| {
            let profile = generic.zone_profile(zone);
            let mut cum = [0u64; 24];
            let mut acc = 0u64;
            for (h, c) in cum.iter_mut().enumerate() {
                acc += (profile.as_slice()[h] * 1e6) as u64 + 1;
                *c = acc;
            }
            cum
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..users)
        .map(|i| {
            let table = &tables[usize::from(i % 10 >= regions[0].1)];
            let total = table[23];
            let posts: Vec<Timestamp> = (0..30)
                .map(|day: i64| {
                    let r = rng.gen_range(0..total);
                    let hour = table.iter().position(|&c| r < c).unwrap_or(23);
                    Timestamp::from_secs(day * 86_400 + hour as i64 * 3_600)
                })
                .collect();
            (format!("u{i:05}"), posts)
        })
        .collect()
}

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("users must be an integer"))
        .unwrap_or(400);

    let handle = serve(ServeConfig::default(), None).expect("bind loopback");
    println!("crowdtz-serve on http://{}", handle.addr());
    let mut client = HttpClient::connect(handle.addr()).expect("connect");

    // Two tenants, different grids — fully isolated engines.
    for (forum, grid) in [
        ("midnight-market", "quarter-hour"),
        ("onion-forum", "hourly"),
    ] {
        let created = client
            .post_json(
                &format!("/v1/tenants/{forum}"),
                &json!({"grid": grid, "min_posts": 10}),
            )
            .expect("create tenant");
        assert_eq!(created.status, 201, "create {forum}");
        println!("created tenant {forum} (grid {grid})");
    }

    println!("synthesizing {users} users (60% UTC+9, 40% UTC-3)…");
    let deltas = synthesize(users, 42);

    // Ingest in monitor-sized batches of 50 users.
    for chunk in deltas.chunks(50) {
        let batch: Vec<serde_json::Value> = chunk
            .iter()
            .map(|(user, posts)| {
                let secs: Vec<i64> = posts.iter().map(|t| t.as_secs()).collect();
                json!({"user": user, "posts": secs})
            })
            .collect();
        let body = json!({ "deltas": batch });
        for forum in ["midnight-market", "onion-forum"] {
            let r = client
                .post_json(&format!("/v1/tenants/{forum}/ingest"), &body)
                .expect("ingest");
            assert_eq!(r.status, 200, "ingest into {forum}");
        }
    }

    // Pull the analysis back off the wire.
    let snapshot = client
        .get("/v1/tenants/midnight-market/snapshot?publish=1")
        .expect("snapshot");
    assert_eq!(snapshot.status, 200);
    println!(
        "published epoch {} covering {} posts",
        snapshot.header("x-crowdtz-epoch").unwrap_or("?"),
        snapshot.header("x-crowdtz-posts").unwrap_or("?"),
    );

    let drift = client
        .get("/v1/tenants/midnight-market/drift?nonzero=1&top=5")
        .expect("drift");
    let drift = drift.json().expect("drift json");
    println!("top zones on the quarter-hour grid:");
    if let serde_json::Value::Array(zones) = drift.field("zones").expect("zones") {
        for zone in zones {
            let minutes = zone.field("offset_minutes").unwrap().as_i64().unwrap();
            let fraction = zone.field("fraction").unwrap().as_f64().unwrap();
            println!(
                "  UTC{:+03}:{:02}  {:>5.1}% of the crowd",
                minutes / 60,
                (minutes % 60).abs(),
                fraction * 100.0
            );
        }
    }

    // The invariant: the HTTP body equals an in-process engine's bytes.
    let engine = ConcurrentStreamingPipeline::new(
        GeolocationPipeline::default()
            .min_posts(10)
            .grid(ZoneGrid::QuarterHour),
    );
    let writer = engine.writer();
    for (user, posts) in &deltas {
        writer.ingest(user, posts).expect("in-process ingest");
    }
    let local = engine.publish().expect("in-process publish");
    let local_bytes = serde_json::to_vec(local.report()).expect("serialize");
    assert_eq!(
        snapshot.body, local_bytes,
        "HTTP snapshot diverged from the in-process engine"
    );
    println!(
        "byte-identity holds: {} bytes over HTTP == in-process publish",
        snapshot.body.len()
    );

    let metrics = client.get("/metrics").expect("metrics");
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    for line in text.lines().filter(|l| {
        l.starts_with("crowdtz_serve_requests_total") || l.starts_with("crowdtz_serve_bytes")
    }) {
        println!("  {line}");
    }
    drop(client);
    handle.shutdown().expect("shutdown");
}
