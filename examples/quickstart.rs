//! Quickstart: geolocate a crowd from post times alone.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a synthetic crowd of Japanese users (ground truth: UTC+9),
//! then — using only their post timestamps — recovers the time zone with
//! the paper's pipeline: profiles → EMD placement → Gaussian fit.

use crowdtz::core::{GenericProfile, GeolocationPipeline};
use crowdtz::stats::render_overlay;
use crowdtz::synth::PopulationSpec;
use crowdtz::time::RegionDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A crowd with known ground truth: 120 users living in Japan.
    let db = RegionDb::table1();
    let japan = db.require(&"japan".into())?;
    let traces = PopulationSpec::new(japan.clone())
        .users(120)
        .posts_per_day(0.5)
        .seed(7)
        .generate();
    println!(
        "generated {} users, {} posts (ground truth: UTC+9)\n",
        traces.len(),
        traces.total_posts()
    );

    // 2. The attack: post times in, time zone out.
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    let report = pipeline.analyze(&traces)?;

    // 3. What the crowd looks like across the 24 time zones.
    let fitted = report
        .mixture()
        .density_all_wrapped(&crowdtz::core::PlacementHistogram::xs(), 24.0);
    println!(
        "{}",
        render_overlay(
            "placement (bar = crowd fraction, · = fitted curve)",
            report.histogram().fractions(),
            &fitted,
        )
    );
    println!("single-Gaussian fit : {}", report.single_fit().curve());
    println!("uncovered time zone : {}", report.single_fit().time_zone());
    println!("fit quality         : {}", report.quality());
    println!("flat (bot) profiles removed: {}", report.flat_removed());
    Ok(())
}
