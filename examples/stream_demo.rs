//! Streaming demo: monitoring a 100 000-user crowd over 50 rounds,
//! batch re-analysis vs incremental snapshots.
//!
//! ```text
//! cargo run --release --example stream_demo [users] [rounds] \
//!     [--durable DIR] [--crash-after R]
//! ```
//!
//! Synthesizes a two-region crowd (60% Tokyo UTC+9, 40% São Paulo UTC−3)
//! as traces, primes a [`StreamingPipeline`] with it, then plays 50
//! monitoring rounds in which ~1% of the users post again. Each round is
//! analyzed twice: a from-scratch batch run over the cumulative traces,
//! and an incremental snapshot that re-places only the dirty users. The
//! reports are byte-identical every round; only the wall-clock differs.
//!
//! With `--durable DIR` the demo runs the crash-safe engine instead:
//! every round is one sequence-numbered batch in `DIR`'s write-ahead
//! log, and the final report lands in `DIR/final_report.json`. Because
//! the workload is derived deterministically from the seed, re-running
//! the same command after a kill resumes from the recovered state and
//! produces a byte-identical final report — `--crash-after R` aborts
//! the process (no orderly shutdown) right after round `R` to prove it.

use std::path::PathBuf;
use std::time::Instant;

use crowdtz::core::{GenericProfile, GeolocationPipeline, StreamingPipeline};
use crowdtz::time::{Timestamp, TraceSet, UserTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `users` traces from the reference generic profile shifted to
/// each user's home zone: 60% at UTC+9, 40% at UTC−3, 40 posts each.
fn synthesize(users: usize, seed: u64) -> TraceSet {
    let generic = GenericProfile::reference();
    let regions = [(9i32, 6usize), (-3, 4)]; // (zone, weight in tenths)
    let tables: Vec<[u64; 24]> = regions
        .iter()
        .map(|&(zone, _)| {
            let profile = generic.zone_profile(zone);
            let mut cum = [0u64; 24];
            let mut acc = 0u64;
            for (h, c) in cum.iter_mut().enumerate() {
                acc += (profile.as_slice()[h] * 1e6) as u64 + 1;
                *c = acc;
            }
            cum
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = TraceSet::default();
    for i in 0..users {
        let table = &tables[usize::from(i % 10 >= regions[0].1)];
        let total = table[23];
        let posts: Vec<Timestamp> = (0..40)
            .map(|day: i64| {
                let r = rng.gen_range(0..total);
                let hour = table.iter().position(|&c| r < c).unwrap_or(23);
                Timestamp::from_secs(day * 86_400 + hour as i64 * 3_600)
            })
            .collect();
        out.insert(UserTrace::new(format!("u{i:06}"), posts));
    }
    out
}

/// The durable path: every round is one `ingest_batch` into the
/// write-ahead log under `dir`. The workload (primer crowd + per-round
/// deltas) is a pure function of the seeds, so a killed run re-invoked
/// with the same arguments regenerates the same batches, the recovery
/// dedupes everything already durable by sequence number, and the final
/// report is byte-identical to an uninterrupted run.
fn durable_run(users: usize, rounds: usize, dir: PathBuf, crash_after: Option<u64>) {
    let dirty_per_round = (users / 100).max(1);
    println!("synthesizing {users} users (60% UTC+9, 40% UTC-3)…");
    let cumulative = synthesize(users, 42);

    let mut engine = StreamingPipeline::open_durable(GeolocationPipeline::default(), &dir)
        .expect("open durable engine");
    let recovered = engine.last_source_seq();
    if recovered > 0 {
        println!("warm restart: recovered through batch {recovered}, resuming…");
    }

    // Batch 1: the primer crowd. A restart skips it by sequence number.
    let primer: Vec<(String, crowdtz::time::Timestamp)> = cumulative
        .iter()
        .flat_map(|t| t.posts().iter().map(|&ts| (t.id().to_owned(), ts)))
        .collect();
    if engine
        .ingest_batch(1, &primer, Some("primed"))
        .expect("ingest primer")
    {
        println!("primed the engine with {} posts (batch 1)…", primer.len());
        // Fold the primer into a snapshot generation immediately so a
        // crash never replays the whole crowd from the log.
        engine.checkpoint_now().expect("primer checkpoint");
    }

    println!("playing {rounds} monitor rounds, ~{dirty_per_round} active users each…");
    let mut rng = StdRng::seed_from_u64(7);
    for round in 1..=rounds as u64 {
        // The rng is drawn for every round — applied or skipped — so a
        // resumed run sees the same deltas as an uninterrupted one.
        let batch: Vec<(String, Timestamp)> = (0..dirty_per_round)
            .map(|_| {
                let user = format!("u{:06}", rng.gen_range(0..users));
                let ts = Timestamp::from_secs(
                    40 * 86_400 + round as i64 * 86_400 + rng.gen_range(0..86_400),
                );
                (user, ts)
            })
            .collect();
        let ckpt = format!("round-{round}");
        let applied = engine
            .ingest_batch(1 + round, &batch, Some(&ckpt))
            .expect("ingest round");
        if applied && Some(round) == crash_after {
            println!("crashing after round {round} (no orderly shutdown)…");
            std::process::abort();
        }
    }

    let report = engine.snapshot().expect("final snapshot");
    let json = serde_json::to_string(&report).expect("serialize report");
    let out = dir.join("final_report.json");
    std::fs::write(&out, &json).expect("write final report");
    println!(
        "{} users classified, {} flat profiles removed",
        report.users_classified(),
        report.flat_removed()
    );
    println!(
        "log: {} bytes after {} batches; final report written to {}",
        engine.store().log_len(),
        engine.last_source_seq(),
        out.display()
    );
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut durable_dir: Option<PathBuf> = None;
    let mut crash_after: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--durable" => {
                durable_dir = Some(args.next().expect("--durable needs a directory").into());
            }
            "--crash-after" => {
                crash_after = Some(
                    args.next()
                        .expect("--crash-after needs a round")
                        .parse()
                        .expect("--crash-after round must be an integer"),
                );
            }
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let users: usize = positional
        .next()
        .map(|a| a.parse().expect("users must be an integer"))
        .unwrap_or(100_000);
    let rounds: usize = positional
        .next()
        .map(|a| a.parse().expect("rounds must be an integer"))
        .unwrap_or(50);
    if let Some(dir) = durable_dir {
        return durable_run(users, rounds, dir, crash_after);
    }
    let dirty_per_round = (users / 100).max(1);

    println!("synthesizing {users} users (60% UTC+9, 40% UTC-3)…");
    let mut cumulative = synthesize(users, 42);
    let pipeline = || GeolocationPipeline::default();

    println!("priming the streaming engine…");
    let mut streaming = StreamingPipeline::new(pipeline());
    streaming.ingest_set(&cumulative);
    streaming.snapshot().expect("priming snapshot");

    println!("playing {rounds} monitor rounds, ~{dirty_per_round} active users each…");
    let mut rng = StdRng::seed_from_u64(7);
    let mut batch_total = 0.0f64;
    let mut incremental_total = 0.0f64;
    let mut last_pair = None;
    for round in 1..=rounds as i64 {
        // ~1% of the crowd posts once this round.
        for _ in 0..dirty_per_round {
            let user = format!("u{:06}", rng.gen_range(0..users));
            let ts = Timestamp::from_secs(40 * 86_400 + round * 86_400 + rng.gen_range(0..86_400));
            cumulative.record(&user, ts);
            streaming.ingest(&user, &[ts]);
        }

        let start = Instant::now();
        let batch = pipeline().analyze(&cumulative).expect("batch analyze");
        batch_total += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let snapshot = streaming.snapshot().expect("incremental snapshot");
        incremental_total += start.elapsed().as_secs_f64();

        // Snapshots share their per-user vectors with the engine; a report
        // held across the next refresh costs one copy-on-write clone. Drop
        // each round's reports (keeping only the last) so the steady-state
        // monitoring cost is what gets measured.
        if round == rounds as i64 {
            last_pair = Some((batch, snapshot));
        }
    }

    println!("\nbatch re-analysis:      {batch_total:.2} s total over {rounds} rounds");
    println!("incremental snapshots:  {incremental_total:.2} s total over {rounds} rounds");
    println!(
        "speedup:                {:.1}x",
        batch_total / incremental_total
    );

    let (batch, snapshot) = last_pair.expect("at least one round ran");
    assert_eq!(
        serde_json::to_string(&batch).expect("serialize"),
        serde_json::to_string(&snapshot).expect("serialize"),
        "incremental snapshot diverged from batch — identity invariant broken"
    );
    println!("\nfinal-round reports are byte-identical; the crowd:");
    println!(
        "{} users classified, {} flat profiles removed",
        snapshot.users_classified(),
        snapshot.flat_removed()
    );
    let (hits, misses) = streaming.cache_stats();
    println!(
        "engine: {} accumulator shards {:?}, placement cache {hits} hits / {misses} misses",
        streaming.shard_count(),
        streaming.shard_occupancy(),
    );
    for (zone, weight) in snapshot.multi_fit().time_zones() {
        println!(
            "  {:>3.0}% of the crowd in {}",
            weight * 100.0,
            crowdtz::time::zone_label(zone)
        );
    }
}
