//! Vendored, offline stand-in for `proptest`.
//!
//! Same shape as upstream — `proptest! { fn prop(x in strategy) { ... } }`
//! with `prop_assert*` macros — but the engine is a plain deterministic
//! random tester: each case draws fresh inputs from a seed derived from
//! the test name and case index. There is no shrinking and no persistence
//! (`.proptest-regressions` files are ignored); a failure message instead
//! reports the case index, which is stable across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG (self-contained; xoshiro256++ seeded by SplitMix64)
// ---------------------------------------------------------------------------

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Derives the generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        // Multiply-shift: uniform enough for test-input generation.
        (u128::from(self.next_u64()) * span) >> 64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value, or `None` if a filter rejected this draw.
    fn try_generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Draws one value, retrying rejected draws; panics if the strategy
    /// rejects 1000 consecutive attempts.
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            if let Some(v) = self.try_generate(rng) {
                return v;
            }
        }
        panic!("strategy rejected 1000 consecutive values; filter too strict");
    }

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`; `reason` labels the filter.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason,
            f,
        }
    }

    /// Maps and filters in one step: `None` results are rejected draws.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            _reason: reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn try_generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.try_generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    _reason: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn try_generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.try_generate(rng).and_then(&self.f)
    }
}

// Integer range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn try_generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn try_generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn try_generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (f64::from(self.start), f64::from(self.end));
                let v = lo + rng.unit_f64() * (hi - lo);
                Some(if v < hi { v as $t } else { self.start })
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// A strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length constraint for [`vec`]: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn try_generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            #[allow(clippy::cast_possible_truncation)]
            let len = self.size.lo + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.try_generate(rng)?);
            }
            Some(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Runner + config
// ---------------------------------------------------------------------------

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; the simulations here are heavier per
        // case, so the vendored default is lower. Tests that care set
        // `with_cases` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property across `config.cases` deterministic cases.
/// Used by the `proptest!` macro; not part of upstream's public API.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(message) = case(&mut rng) {
            panic!(
                "property `{name}` failed at case {i}/{}: {message}",
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Like `assert!` but fails only the current case, with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r));
        }
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: {:?}", __l));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right` ({})\n  both: {:?}",
                ::std::format!($($fmt)+), __l));
        }
    }};
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..1_000).prop_filter_map("even", |n| (n % 2 == 0).then_some(n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments on property fns must parse.
        fn ranges_respect_bounds(a in -11i32..=12, b in 0u64..2_000, x in 0.25f64..0.75) {
            prop_assert!((-11..=12).contains(&a));
            prop_assert!(b < 2_000);
            prop_assert!((0.25..0.75).contains(&x), "x {x}");
        }

        fn vec_lengths(v in collection::vec(any::<u8>(), 0..64), w in collection::vec(0u8..24, 7)) {
            prop_assert!(v.len() < 64);
            prop_assert_eq!(w.len(), 7);
            for &h in &w {
                prop_assert!(h < 24);
            }
        }

        fn filter_map_applies(n in small_even()) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("t", 4).next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        run_cases(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err("nope".to_string())
        });
    }

    use crate::run_cases;
}
