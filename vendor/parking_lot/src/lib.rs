//! Vendored, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with parking_lot's non-poisoning API: `lock()`
//! returns the guard directly. A panic while holding the lock does not
//! poison it for later users (the poison flag is cleared on recovery).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex as StdMutex;

pub use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
