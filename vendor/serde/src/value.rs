//! The JSON-shaped value tree all (de)serialization funnels through.

use std::fmt;

use crate::DeError;

/// A JSON number. Integers keep their exact signedness so full-range
/// `u64` identifiers (e.g. relay fingerprints) survive a round trip.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit in `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Wraps a signed integer.
    pub fn from_i64(n: i64) -> Number {
        Number::I64(n)
    }

    /// Wraps an unsigned integer, preferring the `I64` form when it fits
    /// so `5u64` and `5i64` compare and print identically.
    pub fn from_u64(n: u64) -> Number {
        match i64::try_from(n) {
            Ok(i) => Number::I64(i),
            Err(_) => Number::U64(n),
        }
    }

    /// Wraps a float.
    pub fn from_f64(n: f64) -> Number {
        Number::F64(n)
    }

    /// The value as `i64`, if exactly representable. Floats never coerce.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as `u64`, if exactly representable. Floats never coerce.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(n) => u64::try_from(n).ok(),
            Number::U64(n) => Some(n),
            Number::F64(_) => None,
        }
    }

    /// The value as `f64`. Integers coerce: JSON has one number type, and
    /// `1.0f64` prints as `1` which reparses as an integer.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(n) => Some(n as f64),
            Number::U64(n) => Some(n as f64),
            Number::F64(n) => Some(n),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::F64(a), Number::F64(b)) => a == b,
            (Number::F64(_), _) | (_, Number::F64(_)) => false,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_u64() == other.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(n) => write!(f, "{n}"),
            Number::U64(n) => write!(f, "{n}"),
            Number::F64(n) => {
                if n.is_finite() {
                    // `{}` on f64 already round-trips (shortest form), but
                    // prints integral values without a fraction; that is
                    // fine because `as_f64` accepts integer reparses.
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null matches serde_json's
                    // lossy behaviour for non-finite floats.
                    f.write_str("null")
                }
            }
        }
    }
}

/// A parsed or built JSON document.
///
/// Objects are ordered association lists, not maps: field order is
/// declaration order, duplicates are kept as-is (first match wins on
/// lookup), and printing is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Builds an object from `(name, value)` pairs. Used by the derive.
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        Value::Object(fields)
    }

    /// Looks up a field of an object; missing field or non-object is an
    /// error (this model has no `#[serde(default)]`).
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::mismatch("object", other)),
        }
    }

    /// Decomposes an externally-tagged enum value: either a bare string
    /// (unit variant) or a single-entry object `{"Variant": payload}`.
    pub fn variant(&self) -> Result<(&str, Option<&Value>), DeError> {
        match self {
            Value::String(name) => Ok((name, None)),
            Value::Object(fields) if fields.len() == 1 => Ok((&fields[0].0, Some(&fields[0].1))),
            other => Err(DeError::mismatch(
                "enum (string or single-entry object)",
                other,
            )),
        }
    }

    /// Indexes into a fixed-arity array (tuple struct / tuple variant).
    pub fn tuple_elem(&self, index: usize, arity: usize) -> Result<&Value, DeError> {
        match self {
            Value::Array(items) if items.len() == arity => Ok(&items[index]),
            Value::Array(items) => Err(DeError::custom(format!(
                "expected array of length {arity}, got {}",
                items.len()
            ))),
            other => Err(DeError::mismatch("array", other)),
        }
    }

    /// The number as `i64`, when this is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64`, when this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Writes the compact JSON form into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Writes the pretty (2-space indented) JSON form into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_crosses_variants() {
        assert_eq!(Number::from_i64(5), Number::from_u64(5));
        assert_ne!(Number::from_i64(5), Number::from_f64(5.0));
        assert_eq!(Number::from_u64(u64::MAX), Number::from_u64(u64::MAX));
        assert_ne!(Number::from_i64(-1), Number::from_u64(u64::MAX));
    }

    #[test]
    fn compact_printing_escapes() {
        let v = Value::Object(vec![(
            "k\"ey".to_string(),
            Value::String("a\nb".to_string()),
        )]);
        assert_eq!(v.to_string(), r#"{"k\"ey":"a\nb"}"#);
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(v.field("a").is_ok());
        assert!(v.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }

    #[test]
    fn variant_decomposition() {
        let unit = Value::String("Visible".into());
        assert_eq!(unit.variant().unwrap(), ("Visible", None));
        let tagged = Value::Object(vec![("Hidden".into(), Value::Null)]);
        let (name, payload) = tagged.variant().unwrap();
        assert_eq!(name, "Hidden");
        assert!(payload.is_some());
        assert!(Value::Array(vec![]).variant().is_err());
    }
}
