//! Vendored, offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a serde look-alike that covers exactly what the crates here use:
//! `#[derive(Serialize, Deserialize)]` on non-generic, attribute-free
//! structs and enums, funneled through a JSON-like [`Value`] tree that
//! `serde_json` (also vendored) prints and parses.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! serialization always goes through [`Value`]. Every format in this
//! workspace is JSON, so nothing is lost, and the derive macro stays small
//! enough to audit.
//!
//! Representation conventions match serde's external tagging so that the
//! JSON on the wire looks exactly like upstream's:
//! * structs → objects with declaration-ordered fields;
//! * newtype structs → the inner value;
//! * tuple structs → arrays;
//! * unit enum variants → `"Variant"`;
//! * struct/tuple enum variants → `{"Variant": …}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced when a [`Value`] cannot be turned back into a typed
/// structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// Creates a "expected X, got Y" mismatch error.
    pub fn mismatch(expected: &str, got: &Value) -> DeError {
        DeError::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the type's shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(i64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let n = value.as_i64().ok_or_else(|| DeError::mismatch("integer", value))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_ser_de_signed!(i8, i16, i32, i64);

macro_rules! impl_ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let n = value.as_u64().ok_or_else(|| DeError::mismatch("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_ser_de_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_u64(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<usize, DeError> {
        let n = value
            .as_u64()
            .ok_or_else(|| DeError::mismatch("unsigned integer", value))?;
        usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_i64(*self as i64))
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<isize, DeError> {
        let n = value
            .as_i64()
            .ok_or_else(|| DeError::mismatch("integer", value))?;
        isize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::mismatch("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(value: &Value) -> Result<f32, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-character string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<(), DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::mismatch("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: ?Sized + Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<std::sync::Arc<T>, DeError> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T> Serialize for Cow<'_, T>
where
    T: Serialize + Clone,
{
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<($($t,)+), DeError> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, got array of {}", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map key must serialize to a string-like value, got {}",
            other.kind()
        ),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for a deterministic wire form, matching BTreeMap output.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<HashMap<K, V>, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn negative_i64_round_trip() {
        let v = (-5i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -5);
        assert!(u64::from_value(&v).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [0.5f64; 4];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = ((1u8, 2u8), (3u8, 4u8));
        assert_eq!(
            <((u8, u8), (u8, u8))>::from_value(&tup.to_value()).unwrap(),
            tup
        );
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1i64);
        assert_eq!(
            BTreeMap::<String, i64>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
        assert!(<[u8; 3]>::from_value(&vec![1u8, 2].to_value()).is_err());
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }
}
