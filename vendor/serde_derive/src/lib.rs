//! Vendored `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! The build environment has no crates.io access, so there is no `syn` or
//! `quote`: the item definition is parsed directly off the `TokenStream`
//! and the impls are generated as strings and re-parsed. That is viable
//! because the supported surface is deliberately narrow — non-generic
//! structs and enums with no `#[serde(...)]` attributes — which is all
//! this workspace uses. Anything outside that surface produces a
//! `compile_error!` pointing here rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree form) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree form) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error! emission failed"),
    }
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

enum Fields {
    /// `{ name: Type, ... }` — (field name, type source text).
    Named(Vec<(String, String)>),
    /// `( Type, ... )` — type source texts.
    Tuple(Vec<String>),
    /// No fields at all.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(toks: &mut Tokens) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracket group of the attribute.
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    toks.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // Optional restriction: pub(crate), pub(super), ...
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> Result<String, String> {
    match toks.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!(
            "vendored serde_derive: expected {what}, got {:?}",
            other.map(|t| t.to_string())
        )),
    }
}

/// Collects tokens up to (not including) the next top-level `,`,
/// tracking `<...>` depth so generic argument commas stay inside the
/// type. Returns the collected source text, or `None` if nothing was
/// collected (trailing comma / end of stream).
fn collect_type(toks: &mut Tokens) -> Option<String> {
    let mut depth: i32 = 0;
    let mut collected: Vec<TokenTree> = Vec::new();
    while let Some(tok) = toks.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if depth == 0 => break,
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        collected.push(toks.next().unwrap());
    }
    // Consume the separating comma, if any.
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        toks.next();
    }
    if collected.is_empty() {
        None
    } else {
        Some(collected.into_iter().collect::<TokenStream>().to_string())
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, String)>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks, "field name")?;
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "vendored serde_derive: expected `:` after field `{name}`, got {:?}",
                    other.map(|t| t.to_string())
                ))
            }
        }
        let ty = collect_type(&mut toks)
            .ok_or_else(|| format!("vendored serde_derive: missing type for field `{name}`"))?;
        fields.push((name, ty));
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        match collect_type(&mut toks) {
            Some(ty) => fields.push(ty),
            None => break,
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks, "variant name")?;
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                toks.next();
                Fields::Tuple(parse_tuple_fields(inner)?)
            }
            _ => Fields::Unit,
        };
        // Explicit discriminants (`= expr`) don't affect the externally
        // tagged wire form; skip the expression.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            while let Some(tok) = toks.peek() {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                toks.next();
            }
        }
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = expect_ident(&mut toks, "`struct` or `enum`")?;
    let name = expect_ident(&mut toks, "item name")?;
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive: generic type `{name}` is not supported"
        ));
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => {
                    return Err(format!(
                        "vendored serde_derive: unexpected struct body {:?}",
                        other.map(|t| t.to_string())
                    ))
                }
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!(
                "vendored serde_derive: expected enum body, got {:?}",
                other.map(|t| t.to_string())
            )),
        },
        other => Err(format!(
            "vendored serde_derive: expected `struct` or `enum`, got `{other}`"
        )),
    }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|(f, _)| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(tys) if tys.len() == 1 => {
                    // Newtype struct: transparent, serializes as the inner value.
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Fields::Tuple(tys) => {
                    let entries: Vec<String> = (0..tys.len())
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String(::std::string::String::from({vname:?}))"
                        ),
                        Fields::Named(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|(f, _)| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::object(vec![(\
                                   ::std::string::String::from({vname:?}), \
                                   ::serde::Value::object(vec![{entries}])\
                                 )])",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                        Fields::Tuple(tys) => {
                            let binds: Vec<String> =
                                (0..tys.len()).map(|i| format!("f{i}")).collect();
                            let payload = if tys.len() == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let entries: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", entries.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => \
                                 ::serde::Value::object(vec![(\
                                   ::std::string::String::from({vname:?}), {payload}\
                                 )])",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// `field_expr(ty, source)` → `<Ty as Deserialize>::from_value(source)?`
fn de_expr(ty: &str, source: &str) -> String {
    format!("<{ty} as ::serde::Deserialize>::from_value({source})?")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|(f, ty)| {
                            format!("{f}: {}", de_expr(ty, &format!("value.field({f:?})?")))
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(tys) if tys.len() == 1 => format!(
                    "::std::result::Result::Ok({name}({}))",
                    de_expr(&tys[0], "value")
                ),
                Fields::Tuple(tys) => {
                    let arity = tys.len();
                    let inits: Vec<String> = tys
                        .iter()
                        .enumerate()
                        .map(|(i, ty)| de_expr(ty, &format!("value.tuple_elem({i}, {arity})?")))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!(
                    "{{ <() as ::serde::Deserialize>::from_value(value)?; \
                     ::std::result::Result::Ok({name}) }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                       -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname})"
                        ),
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|(f, ty)| {
                                    format!(
                                        "{f}: {}",
                                        de_expr(ty, &format!("payload.field({f:?})?"))
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let payload = payload.ok_or_else(|| \
                                       ::serde::DeError::custom(\
                                         concat!(\"missing payload for variant `\", {vname:?}, \"`\")))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join(", ")
                            )
                        }
                        Fields::Tuple(tys) => {
                            let inits: Vec<String> = if tys.len() == 1 {
                                vec![de_expr(&tys[0], "payload")]
                            } else {
                                let arity = tys.len();
                                tys.iter()
                                    .enumerate()
                                    .map(|(i, ty)| {
                                        de_expr(ty, &format!("payload.tuple_elem({i}, {arity})?"))
                                    })
                                    .collect()
                            };
                            format!(
                                "{vname:?} => {{\n\
                                     let payload = payload.ok_or_else(|| \
                                       ::serde::DeError::custom(\
                                         concat!(\"missing payload for variant `\", {vname:?}, \"`\")))?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}",
                                inits = inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                       -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         let (variant, payload) = value.variant()?;\n\
                         match variant {{\n\
                             {arms},\n\
                             other => ::std::result::Result::Err(\
                               ::serde::DeError::custom(\
                                 format!(\"unknown variant `{{other}}`\")))\n\
                         }}\n\
                     }}\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    }
}
