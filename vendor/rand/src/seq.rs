//! Slice helpers (`choose`, `shuffle`) — a small subset of `rand::seq`.

use crate::{Rng, RngCore};

/// Random helpers on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Picks a uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        assert!(v.choose(&mut rng).is_some());
        let before = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, before);
        v.sort_unstable();
        assert_eq!(v, before);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
