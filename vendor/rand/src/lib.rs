//! Vendored, offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `rand 0.8` API it actually uses: `StdRng`
//! seeded from a `u64`, and the `Rng` extension methods `gen`, `gen_bool`
//! and `gen_range`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed on every platform, with
//! statistical quality far beyond what the simulations require.
//!
//! The stream of values differs from upstream `StdRng` (which is ChaCha12);
//! everything in this workspace treats seeds as opaque, so only
//! *determinism* matters, not the specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. Offline stand-in: derives the
    /// seed from the current time, which is good enough for the few
    /// non-reproducible uses (none in this workspace).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// User-facing random value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, as upstream `rand` does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns true with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: ratio > 1");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)` (`high` inclusive when
    /// `inclusive` is set).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                // Work in u128 so the span of full-width i64/u64 ranges
                // never overflows.
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + u128::from(inclusive);
                debug_assert!(span > 0);
                if span == 0 || span > u128::from(u64::MAX) {
                    // Full 64-bit span: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let span = span as u64;
                // Multiply-shift rejection (Lemire) keeps the draw unbiased.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (lo + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                _inclusive: bool,
            ) -> $t {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + u * (high as f64 - low as f64);
                // Guard against rounding up to the open bound.
                if v >= high as f64 { low } else { v as $t }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// A convenience thread-local-free generator used by a few call sites in
/// upstream rand; provided for API familiarity.
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    use rngs::StdRng;
    let mut rng = StdRng::from_entropy();
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn full_width_u64_range() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not overflow or hang.
        let v = rng.gen_range(0u64..u64::MAX);
        let _ = v;
        let w: u64 = rng.gen();
        let _ = w;
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen_range(0u8..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 10);
    }
}
