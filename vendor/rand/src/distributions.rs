//! The standard distribution: `rng.gen::<T>()` support.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution per type: full width for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[allow(clippy::cast_possible_truncation)]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn u64_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let high_bit = (0..10_000).filter(|_| rng.gen::<u64>() >> 63 == 1).count();
        assert!((4_500..5_500).contains(&high_bit));
    }
}
