//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++
/// seeded through SplitMix64.
///
/// Upstream `StdRng` is ChaCha12; this stand-in trades the cryptographic
/// stream for a tiny, fast, well-studied one. Both are deterministic per
/// seed, which is the only property the simulations rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Alias kept for call sites that name the small generator explicitly.
pub type SmallRng = StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_state_even_for_zero_seed() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
