//! Vendored, offline stand-in for `criterion`.
//!
//! Implements the harness-facing API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, groups, `bench_with_input`,
//! `black_box`) over a simple timing loop: a short warm-up, then a fixed
//! number of timed samples whose median per-iteration time is printed.
//! There are no statistics beyond that, no HTML reports, and no saved
//! baselines — enough to compare runs by eye and to keep
//! `cargo bench --no-run` compiling the real bench code.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` wraps the timed region.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut routine: F) {
    // Calibrate: one iteration to size the per-sample batch.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bench);
    let once = bench.elapsed.max(Duration::from_nanos(1));
    let per_sample = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bench = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        routine(&mut bench);
        per_iter.push(bench.elapsed.as_nanos() as f64 / per_sample as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    println!(
        "{name:<40} median {:>12}   best {:>12}   ({samples} samples × {per_sample} iters)",
        format_time(median),
        format_time(best),
    );
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        routine: F,
    ) -> &mut Criterion {
        run_bench(name, self.sample_size, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, routine);
        self
    }

    /// Runs a parameterized benchmark; the closure receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            routine(b, input);
        });
        self
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions: `criterion_group!(benches, f, g)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // run gets no args. Either way, run everything.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        let mut hits = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                hits += 1;
                black_box(2u64.pow(10))
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
