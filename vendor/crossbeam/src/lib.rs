//! Vendored, offline stand-in for `crossbeam`.
//!
//! Only the scoped-thread entry point is provided, shimmed over
//! `std::thread::scope` (stable since 1.63). The crossbeam API differs
//! from std's in two ways this shim preserves: the spawn closure receives
//! the scope as an argument (for nested spawns), and `scope` returns a
//! `Result` (`Ok` unless the scope machinery itself fails, which the std
//! backing cannot report — child panics surface through `join`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads (crossbeam `thread` module subset).
pub mod thread {
    use std::any::Any;

    /// Boxed panic payload, as returned by `join` on a panicked thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to spawn closures; spawned threads may borrow
    /// from the enclosing `'env`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload if the thread panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let nested = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&nested)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature; the std backing always yields `Ok`
    /// (an unjoined child panic propagates as a panic instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn child_panic_reported_via_join() {
        let r = crate::thread::scope(|scope| scope.spawn(|_| panic!("boom")).join()).unwrap();
        assert!(r.is_err());
    }
}
