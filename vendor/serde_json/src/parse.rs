//! Recursive-descent JSON parser. Every failure path is an `Error`;
//! nesting is capped so hostile input cannot overflow the stack.

use crate::Error;
use serde::{Number, Value};

const MAX_DEPTH: usize = 128;

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::new(format!(
                "expected `{}`, got end of input",
                b as char
            ))),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(other) => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, got `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
                None => return Err(Error::new("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                Some(other) => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, got `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
                None => return Err(Error::new("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Scan a run of plain UTF-8 up to the next quote or backslash.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    Some(other) => {
                        return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                    }
                    None => return Err(Error::new("unterminated escape")),
                },
                Some(ctrl) if ctrl < 0x20 => {
                    return Err(Error::new(format!(
                        "unescaped control character 0x{ctrl:02x} in string"
                    )))
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(Error::new("invalid \\u escape")),
            };
            n = n * 16 + d;
        }
        Ok(n)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: must be followed by \uXXXX low surrogate.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(Error::new("unpaired surrogate in \\u escape"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(Error::new("invalid low surrogate in \\u escape"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| Error::new("invalid \\u code point"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::from_f64(n)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            parse(r#""aé\n""#).unwrap(),
            Value::String("aé\n".to_string())
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".to_string()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "--1",
            "1.2.3",
            "\"unterminated",
            "[1 2]",
            "{\"a\":1,}x",
            "{1:2}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_cap_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn arbitrary_ascii_never_panics() {
        // Cheap smoke test; the forum crate's proptests hammer this harder.
        for seed in 0..200u32 {
            let s: String = (0..40)
                .map(|i| {
                    let b = (seed.wrapping_mul(2_654_435_761).wrapping_add(i * 97) % 94 + 32) as u8;
                    b as char
                })
                .collect();
            let _ = parse(&s);
        }
    }
}
