//! Vendored, offline stand-in for `serde_json`.
//!
//! Bridges the vendored serde's [`Value`] tree to JSON text/bytes. The
//! parser is a recursive-descent parser with a hard nesting cap; it is
//! written to return [`Error`] on every malformed input — truncated,
//! bit-flipped, or adversarial bytes must never panic, because the
//! workspace's fault-injection tests feed it exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;

pub use serde::{Number, Value};

use std::fmt;

/// Error from parsing or (de)serializing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed (2-space indented) JSON.
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
///
/// Infallible in this model; the `Result` mirrors upstream's signature.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses a value from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch with `T` — never panics, whatever the bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] literal. Supports the flat-object subset this
/// workspace uses: `json!({"key": expr, ...})`, `json!(expr)`, and
/// `json!(null)`. Values are any `serde::Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $((
                ::std::string::String::from($key),
                ::serde::Serialize::to_value(&$val),
            )),*
        ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v: Value = from_str(r#"{"a":[1,2.5,-3],"b":null,"c":"x\n","d":true}"#).unwrap();
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn u64_precision_survives() {
        let n = u64::MAX;
        let s = to_string(&n).unwrap();
        assert_eq!(s, "18446744073709551615");
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn integral_float_reparses() {
        // `1.0f64` prints as `1`; deserializing f64 must accept it.
        let s = to_string(&1.0f64).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn json_macro_flat_object() {
        let v = json!({"forum": 3u32, "name": "abc", "x": 1.5f64});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"forum":3,"name":"abc","x":1.5}"#
        );
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = json!({"a": 1u8});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn from_slice_rejects_bad_utf8() {
        assert!(from_slice::<Value>(&[0xFF, 0xFE, b'{']).is_err());
    }
}
