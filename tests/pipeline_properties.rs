//! Cross-crate property tests: invariants of the full pipeline under
//! randomized worlds.

use crowdtz::core::{
    place_distribution, GenericProfile, GeolocationPipeline, PlacementHistogram, StreamingPipeline,
};
use crowdtz::synth::PopulationSpec;
use crowdtz::time::{HolidayCalendar, Region, RegionDb, TzOffset, Zone};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A synthetic fixed-offset crowd is always placed within ±2 zones of
    /// its home offset, for any offset and seed.
    #[test]
    fn placement_tracks_home_offset(offset in -11i32..=12, seed in 0u64..1_000) {
        let region = Region::new(
            "prop-region",
            "Prop Region",
            Zone::fixed(TzOffset::from_hours(offset).unwrap()),
            None,
            HolidayCalendar::none(),
        );
        let traces = PopulationSpec::new(region)
            .users(30)
            .posts_per_day(0.8)
            .seed(seed)
            .generate();
        let report = GeolocationPipeline::with_generic(GenericProfile::reference())
            .analyze(&traces)
            .expect("analyze");
        let mean = report.mixture().dominant().unwrap().mean;
        // Distance on the 24-zone circle.
        let diff = (mean - f64::from(offset)).rem_euclid(24.0);
        let circ = diff.min(24.0 - diff);
        prop_assert!(circ <= 2.0, "offset {offset}: mean {mean}");
    }

    /// Shifting every generic zone profile and re-placing is the identity:
    /// zone_profile(k) always places at k.
    #[test]
    fn zone_profiles_place_at_their_own_zone(k in -11i32..=12) {
        let generic = GenericProfile::reference();
        let (zone, emd) = place_distribution(&generic.zone_profile(k), &generic);
        prop_assert_eq!(zone, k);
        prop_assert!(emd < 1e-12);
    }

    /// The placement histogram is a probability vector whatever the crowd.
    #[test]
    fn histogram_is_normalized(seed in 0u64..500) {
        let db = RegionDb::table1();
        let traces = PopulationSpec::new(db.require(&"france".into()).unwrap().clone())
            .users(20)
            .posts_per_day(0.7)
            .seed(seed)
            .generate();
        let report = GeolocationPipeline::with_generic(GenericProfile::reference())
            .analyze(&traces)
            .expect("analyze");
        let total: f64 = report.histogram().fractions().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(report.histogram().users(), report.users_classified());
        let xs = PlacementHistogram::xs();
        prop_assert_eq!(xs.len(), 24);
    }

    /// Mixture weights always sum to one and every component mean stays on
    /// the zone axis.
    #[test]
    fn mixture_component_invariants(seed in 0u64..500) {
        let db = RegionDb::table1();
        let mut traces = PopulationSpec::new(db.require(&"japan".into()).unwrap().clone())
            .users(25)
            .posts_per_day(0.7)
            .seed(seed)
            .generate();
        for t in PopulationSpec::new(db.require(&"brazil".into()).unwrap().clone())
            .users(25)
            .posts_per_day(0.7)
            .seed(seed ^ 0xB)
            .generate()
            .iter()
        {
            traces.insert(t.clone());
        }
        let report = GeolocationPipeline::with_generic(GenericProfile::reference())
            .analyze(&traces)
            .expect("analyze");
        let weights: f64 = report.mixture().components().iter().map(|c| c.weight).sum();
        prop_assert!((weights - 1.0).abs() < 1e-6);
        for c in report.mixture().components() {
            prop_assert!((-13.0..=14.0).contains(&c.mean), "mean {}", c.mean);
            prop_assert!(c.sigma > 0.0);
        }
    }

    /// Streaming ingestion is order- and chunking-independent: splitting
    /// every user's posts into arbitrary chunks and feeding them in an
    /// arbitrary interleaving yields a snapshot byte-identical to the
    /// one-shot batch analysis of the same traces.
    #[test]
    fn streaming_ingest_is_chunk_order_invariant(
        seed in 0u64..200,
        chunks in 1usize..=4,
        shuffle_seed in 0u64..1_000,
    ) {
        let db = RegionDb::table1();
        let traces = PopulationSpec::new(db.require(&"france".into()).unwrap().clone())
            .users(20)
            .posts_per_day(0.7)
            .seed(seed)
            .generate();

        // Split each user's posts into `chunks` index-slices, then feed
        // the (user, slice) pieces in a shuffled order.
        let mut pieces = Vec::new();
        for trace in traces.iter() {
            let posts = trace.posts();
            for c in 0..chunks {
                let piece = &posts[posts.len() * c / chunks..posts.len() * (c + 1) / chunks];
                if !piece.is_empty() {
                    pieces.push((trace.id(), piece));
                }
            }
        }
        pieces.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));

        let pipeline = || GeolocationPipeline::with_generic(GenericProfile::reference());
        let mut streaming = StreamingPipeline::new(pipeline());
        for (user, piece) in pieces {
            streaming.ingest(user, piece);
        }
        let snapshot = streaming.snapshot().expect("snapshot");
        let batch = pipeline().analyze(&traces).expect("analyze");
        prop_assert_eq!(
            serde_json::to_string(&snapshot).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }
}
