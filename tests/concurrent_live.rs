//! End-to-end concurrent monitoring: several monitors feeding one
//! shared engine through `crowdtz::live::run_concurrent` must produce a
//! report byte-identical to the same polls fed sequentially (ISSUE 8).

use crowdtz::core::{ConcurrentStreamingPipeline, GeolocationPipeline, StreamingPipeline};
use crowdtz::forum::{CrowdComponent, ForumHost, ForumSpec, Monitor, TimestampPolicy};
use crowdtz::live::run_concurrent;
use crowdtz::time::{CivilDateTime, Timestamp};
use crowdtz::tor::TorNetwork;

/// One forum per "mirror": same shape, different seed, so the monitors
/// observe distinct crowds with overlapping pseudonym styles.
fn forum_spec(seed: u64, crowd: &str) -> ForumSpec {
    ForumSpec::new("Hidden TS Forum", vec![CrowdComponent::new(crowd, 1.0)], 6)
        .seed(seed)
        .policy(TimestampPolicy::Hidden)
}

fn monitor_for(seed: u64, crowd: &str) -> Monitor {
    let forum = crowdtz::forum::SimulatedForum::generate(&forum_spec(seed, crowd));
    let host = ForumHost::new(forum).page_size(25);
    let mut net = TorNetwork::with_relays(30, 5);
    let addr = net.publish(host.into_hidden_service(1)).unwrap();
    Monitor::new(net.connect(&addr, 2).unwrap())
}

fn fleet() -> Vec<Monitor> {
    vec![
        monitor_for(11, "italy"),
        monitor_for(23, "japan"),
        monitor_for(37, "illinois"),
    ]
}

fn window() -> (Timestamp, Timestamp, i64) {
    let from = Timestamp::from_civil_utc(CivilDateTime::new(2016, 3, 1, 0, 0, 0).unwrap());
    let to = Timestamp::from_civil_utc(CivilDateTime::new(2016, 3, 6, 0, 0, 0).unwrap());
    (from, to, 3_600)
}

fn pipeline() -> GeolocationPipeline {
    GeolocationPipeline::default().min_posts(1)
}

#[test]
fn concurrent_fleet_matches_sequential_replay() {
    let (from, to, interval) = window();

    // Reference: each monitor's polls fed sequentially into one plain
    // engine (monitor order is irrelevant — deltas commute).
    let mut reference = StreamingPipeline::new(pipeline());
    for monitor in &mut fleet() {
        monitor
            .run_batched(from, to, interval, |batch| reference.ingest_posts(batch))
            .unwrap();
    }
    let want = serde_json::to_string(&reference.snapshot().unwrap()).unwrap();

    // Live: the same fleet on threads, one shared concurrent engine.
    let engine = ConcurrentStreamingPipeline::new(pipeline());
    let mut monitors = fleet();
    run_concurrent(&engine, &mut monitors, from, to, interval).unwrap();
    assert_eq!(
        engine.active_writers(),
        0,
        "writers unregister on thread exit"
    );

    let published = engine.publish().unwrap();
    let got = serde_json::to_string(published.report()).unwrap();
    assert_eq!(got, want, "concurrent fleet must match sequential replay");
    assert_eq!(published.posts_ingested(), reference.posts_ingested());

    // The published cell serves the same report wait-free.
    let seen = engine.snapshot().expect("published");
    assert_eq!(seen.epoch(), published.epoch());
}

#[test]
fn snapshots_during_a_live_run_are_never_torn() {
    let (from, to, interval) = window();
    let engine = ConcurrentStreamingPipeline::new(pipeline());
    let mut monitors = fleet();

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let done = &done;

        // Dashboard thread: publish + read concurrently with the crawl.
        let dashboard = scope.spawn(move || {
            let mut epochs = Vec::new();
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                // Publishing mid-crawl may legitimately find zero users.
                if let Ok(p) = engine_ref.publish() {
                    epochs.push(p.epoch());
                }
                if let Some(seen) = engine_ref.snapshot() {
                    assert!(!seen.report().profiles().is_empty());
                }
                std::thread::yield_now();
            }
            epochs
        });

        let crawl = scope.spawn(move || {
            let mut monitors = std::mem::take(&mut monitors);
            run_concurrent(engine_ref, &mut monitors, from, to, interval)
        });

        crawl.join().expect("crawl thread").unwrap();
        done.store(true, std::sync::atomic::Ordering::Release);
        let epochs = dashboard.join().expect("dashboard thread");
        assert!(
            epochs.windows(2).all(|w| w[1] == w[0] + 1),
            "published epochs are dense and monotonic: {epochs:?}"
        );
    });

    // After the crawl, one more publish matches the sequential world.
    let mut reference = StreamingPipeline::new(pipeline());
    for monitor in &mut fleet() {
        monitor
            .run_batched(from, to, interval, |batch| reference.ingest_posts(batch))
            .unwrap();
    }
    let want = serde_json::to_string(&reference.snapshot().unwrap()).unwrap();
    let got = serde_json::to_string(engine.publish().unwrap().report()).unwrap();
    assert_eq!(
        got, want,
        "mid-run publishing must not perturb the final report"
    );
}
