//! End-to-end integration tests spanning all crates through the facade:
//! synthetic world → Tor → forum → scraper → geolocation, with the
//! paper's shape claims as the oracle.

use crowdtz::core::{GenericProfile, GeolocationPipeline};
use crowdtz::forum::{ForumHost, ForumSpec, Scraper, SimulatedForum};
use crowdtz::synth::PopulationSpec;
use crowdtz::time::{CivilDateTime, RegionDb, Timestamp};
use crowdtz::tor::TorNetwork;

fn crawl_clock() -> Timestamp {
    Timestamp::from_civil_utc(CivilDateTime::new(2017, 1, 15, 0, 0, 0).unwrap())
}

/// Simulate → publish → scrape → analyze, returning the report.
fn scrape_and_analyze(spec: ForumSpec, seed: u64) -> crowdtz::core::GeolocationReport {
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(50, seed);
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(seed))
        .expect("publish");
    let mut scraper = Scraper::new(network.connect(&address, seed).expect("connect"));
    let scrape = scraper.calibrated_dump(crawl_clock()).expect("scrape");
    GeolocationPipeline::with_generic(GenericProfile::reference())
        .analyze(&scrape.utc_traces())
        .expect("analyze")
}

#[test]
fn crd_club_is_placed_in_russia() {
    let report = scrape_and_analyze(ForumSpec::crd_club().scaled(0.4), 1);
    assert_eq!(report.mixture().len(), 1, "{}", report.mixture());
    let mean = report.mixture().dominant().unwrap().mean;
    assert!((2.4..=4.6).contains(&mean), "mean {mean}");
}

#[test]
fn idc_is_placed_in_italy() {
    let report = scrape_and_analyze(ForumSpec::idc().scaled(0.8), 2);
    let mean = report.mixture().dominant().unwrap().mean;
    assert!((0.3..=2.3).contains(&mean), "mean {mean}");
}

#[test]
fn dream_market_has_europe_and_america() {
    let report = scrape_and_analyze(ForumSpec::dream_market().scaled(0.5), 3);
    assert_eq!(report.mixture().len(), 2, "{}", report.mixture());
    let comps = report.mixture().components();
    // Larger component Europe, smaller America.
    assert!((comps[0].mean - 1.0).abs() <= 2.0, "{}", report.mixture());
    assert!((comps[1].mean + 6.0).abs() <= 2.0, "{}", report.mixture());
}

#[test]
fn pedo_support_has_three_components_including_utc_minus_3() {
    let report = scrape_and_analyze(ForumSpec::pedo_support(), 4);
    assert_eq!(report.mixture().len(), 3, "{}", report.mixture());
    let has_near = |z: f64, tol: f64| {
        report
            .mixture()
            .components()
            .iter()
            .any(|c| (c.mean - z).abs() <= tol)
    };
    assert!(has_near(-7.5, 1.6), "{}", report.mixture());
    assert!(has_near(-3.0, 1.5), "{}", report.mixture());
    assert!(has_near(4.0, 1.5), "{}", report.mixture());
}

#[test]
fn single_region_crowds_recover_home_zone_without_forums() {
    let db = RegionDb::table1();
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    for (region, home) in [("japan", 9.0), ("united-kingdom", 0.0), ("new-york", -5.0)] {
        let traces = PopulationSpec::new(db.require(&region.into()).unwrap().clone())
            .users(60)
            .posts_per_day(0.6)
            .seed(11)
            .generate();
        let report = pipeline.analyze(&traces).expect("analyze");
        let mean = report.mixture().dominant().unwrap().mean;
        assert!(
            (mean - home).abs() <= 1.5,
            "{region}: mean {mean}, home {home}"
        );
    }
}

#[test]
fn scraped_traces_equal_ground_truth_after_calibration() {
    let spec = ForumSpec::idc()
        .scaled(0.4)
        .server_offset_secs(5 * 3_600 + 900);
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(50, 9);
    let address = network
        .publish(ForumHost::new(forum.clone()).into_hidden_service(9))
        .expect("publish");
    let mut scraper = Scraper::new(network.connect(&address, 9).expect("connect"));
    let scrape = scraper.calibrated_dump(crawl_clock()).expect("scrape");
    assert_eq!(scrape.offset_secs(), Some(5 * 3_600 + 900));
    assert_eq!(*scrape.utc_traces(), forum.ground_truth());
}

#[test]
fn quality_always_beats_shifted_baseline() {
    for (spec, seed) in [
        (ForumSpec::crd_club().scaled(0.3), 21),
        (ForumSpec::majestic_garden().scaled(0.2), 22),
    ] {
        let report = scrape_and_analyze(spec, seed);
        let baseline = report
            .single_fit()
            .baseline(report.histogram())
            .expect("baseline");
        assert!(
            report.quality().average < baseline.average,
            "fit {} vs baseline {}",
            report.quality(),
            baseline
        );
    }
}

#[test]
fn facade_prelude_exposes_the_public_api() {
    use crowdtz::prelude::*;
    let _ = GenericProfile::reference();
    let _: TzOffset = TzOffset::UTC;
    let _ = RegionDb::table1();
    let _ = Distribution24::uniform();
    let _ = GaussianCurve::new(0.0, 2.5, 1.0);
}
