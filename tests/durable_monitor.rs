//! End-to-end durability: a monitoring session feeding the durable
//! streaming engine survives a mid-run kill.
//!
//! The pairing under test (ISSUE 6): `Monitor::resume_run_batched`
//! delivers each poll as a sequence-numbered batch, and
//! `DurableStreamingPipeline::ingest_batch` persists the batch *and*
//! the monitor checkpoint in one log record. Killing the process at any
//! batch boundary and restarting from the recovered checkpoint — even a
//! stale one — must end with a snapshot byte-identical to a session
//! that was never killed, with the boundary batch deduped by sequence
//! number rather than double-counted.

use std::path::PathBuf;

use crowdtz::core::{GeolocationPipeline, StreamingPipeline};
use crowdtz::forum::{
    CrowdComponent, ForumHost, ForumSpec, Monitor, MonitorCheckpoint, TimestampPolicy,
};
use crowdtz::time::{CivilDateTime, Timestamp};
use crowdtz::tor::TorNetwork;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crowdtz-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn forum_spec() -> ForumSpec {
    ForumSpec::new(
        "Hidden TS Forum",
        vec![CrowdComponent::new("italy", 1.0)],
        8,
    )
    .seed(42)
    .policy(TimestampPolicy::Hidden)
}

/// A fresh process: its own simulated forum instance (deterministic from
/// the spec seed) and a monitor with no in-memory cursor.
fn fresh_monitor() -> Monitor {
    let forum = crowdtz::forum::SimulatedForum::generate(&forum_spec());
    let host = ForumHost::new(forum).page_size(25);
    let mut net = TorNetwork::with_relays(30, 5);
    let addr = net.publish(host.into_hidden_service(1)).unwrap();
    Monitor::new(net.connect(&addr, 2).unwrap())
}

fn window() -> (Timestamp, Timestamp, i64) {
    let from = Timestamp::from_civil_utc(CivilDateTime::new(2016, 3, 1, 0, 0, 0).unwrap());
    let to = Timestamp::from_civil_utc(CivilDateTime::new(2016, 3, 8, 0, 0, 0).unwrap());
    (from, to, 3_600)
}

fn pipeline() -> GeolocationPipeline {
    GeolocationPipeline::default().min_posts(1)
}

fn report_json(engine: &mut StreamingPipeline) -> String {
    serde_json::to_string(&engine.snapshot().expect("snapshot")).unwrap()
}

#[test]
fn killed_monitor_restarts_warm_and_matches_an_uninterrupted_run() {
    let (from, to, interval) = window();

    // Reference: never-killed session into a plain in-memory engine.
    let mut reference = StreamingPipeline::new(pipeline());
    let mut total_batches = 0u64;
    fresh_monitor()
        .resume_run_batched(from, to, interval, MonitorCheckpoint::start(), |_, b, _| {
            reference.ingest_posts(b);
            total_batches += 1;
            true
        })
        .unwrap();
    assert!(total_batches >= 3, "window too small to exercise a kill");
    let want = report_json(&mut reference);
    let kill_after = total_batches / 2;

    let dir = tmp_dir("kill-restart");

    // Run 1: feed the durable engine, storing the serialized monitor
    // checkpoint transactionally with every batch, and "die" at a batch
    // boundary mid-window (drop with no orderly shutdown — the
    // write-ahead log is the only thing that survives).
    {
        let mut engine = StreamingPipeline::open_durable(pipeline(), &dir).unwrap();
        engine.snapshot_every_bytes(4096);
        fresh_monitor()
            .resume_run_batched(
                from,
                to,
                interval,
                MonitorCheckpoint::start(),
                |seq, b, cp| {
                    let blob = serde_json::to_string(cp).unwrap();
                    assert!(engine.ingest_batch(seq, b, Some(&blob)).unwrap());
                    seq < kill_after
                },
            )
            .unwrap();
        assert_eq!(engine.last_source_seq(), kill_after);
    }

    // Run 2 ("the restart"): recover the engine, resume the monitor from
    // the checkpoint the recovery hands back.
    let mut engine = StreamingPipeline::open_durable(pipeline(), &dir).unwrap();
    assert_eq!(
        engine.last_source_seq(),
        kill_after,
        "warm restart lost batches"
    );
    let cp: MonitorCheckpoint =
        serde_json::from_str(engine.source_checkpoint().expect("recovered checkpoint")).unwrap();
    assert_eq!(cp.batch_seq(), kill_after);
    fresh_monitor()
        .resume_run_batched(from, to, interval, cp, |seq, b, after| {
            let blob = serde_json::to_string(after).unwrap();
            assert!(engine.ingest_batch(seq, b, Some(&blob)).unwrap());
            true
        })
        .unwrap();
    assert_eq!(engine.last_source_seq(), total_batches);
    assert_eq!(
        serde_json::to_string(&engine.snapshot().unwrap()).unwrap(),
        want,
        "kill/restart diverged from the uninterrupted session"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_checkpoint_restart_dedupes_the_boundary_batch() {
    let (from, to, interval) = window();

    let mut reference = StreamingPipeline::new(pipeline());
    let mut checkpoints: Vec<MonitorCheckpoint> = Vec::new();
    fresh_monitor()
        .resume_run_batched(
            from,
            to,
            interval,
            MonitorCheckpoint::start(),
            |_, b, cp| {
                reference.ingest_posts(b);
                checkpoints.push(cp.clone());
                true
            },
        )
        .unwrap();
    assert!(checkpoints.len() >= 3);
    let want = report_json(&mut reference);
    let boundary = checkpoints.len() as u64 / 2 + 1;

    let dir = tmp_dir("stale-restart");
    {
        let mut engine = StreamingPipeline::open_durable(pipeline(), &dir).unwrap();
        fresh_monitor()
            .resume_run_batched(
                from,
                to,
                interval,
                MonitorCheckpoint::start(),
                |seq, b, cp| {
                    let blob = serde_json::to_string(cp).unwrap();
                    assert!(engine.ingest_batch(seq, b, Some(&blob)).unwrap());
                    seq < boundary
                },
            )
            .unwrap();
    }

    // Restart from a checkpoint one batch *behind* the engine's durable
    // state — the worst-case restart gap. The monitor re-delivers the
    // boundary batch with its original sequence number; the engine must
    // drop it (`Ok(false)`), not double-count it.
    let mut engine = StreamingPipeline::open_durable(pipeline(), &dir).unwrap();
    assert_eq!(engine.last_source_seq(), boundary);
    let stale = checkpoints[boundary as usize - 2].clone();
    let mut deduped = 0u32;
    fresh_monitor()
        .resume_run_batched(from, to, interval, stale, |seq, b, after| {
            let blob = serde_json::to_string(after).unwrap();
            if !engine.ingest_batch(seq, b, Some(&blob)).unwrap() {
                deduped += 1;
                assert_eq!(seq, boundary, "only the boundary batch may dedupe");
            }
            true
        })
        .unwrap();
    assert_eq!(deduped, 1, "boundary batch was not re-delivered/deduped");
    assert_eq!(
        serde_json::to_string(&engine.snapshot().unwrap()).unwrap(),
        want,
        "stale-checkpoint restart double-counted or lost observations"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
