//! Failure-injection integration tests: bots, hidden timestamps, random
//! delays, uncalibrated offsets, service takedowns, and degenerate crowds.

use crowdtz::core::{CoreError, GenericProfile, GeolocationPipeline};
use crowdtz::forum::{
    CrawlCheckpoint, CrowdComponent, ForumError, ForumHost, ForumSpec, RetryPolicy, ScrapeReport,
    Scraper, SimulatedForum, TimestampPolicy,
};
use crowdtz::synth::{generate_bot, BotSpec, PopulationSpec};
use crowdtz::time::{CivilDateTime, RegionDb, Timestamp, TraceSet};
use crowdtz::tor::{FaultPlan, FaultRates, TorError, TorNetwork};

fn crawl_clock() -> Timestamp {
    Timestamp::from_civil_utc(CivilDateTime::new(2017, 1, 15, 0, 0, 0).unwrap())
}

fn italian_spec(users: usize) -> ForumSpec {
    ForumSpec::new("F", vec![CrowdComponent::new("italy", 1.0)], users)
        .seed(77)
        .posts_per_user_per_day(0.5)
}

#[test]
fn bot_heavy_crowd_still_geolocates() {
    // A third of the crowd is bots; polishing must absorb them.
    let db = RegionDb::table1();
    let mut traces: TraceSet = PopulationSpec::new(db.require(&"france".into()).unwrap().clone())
        .users(40)
        .posts_per_day(0.6)
        .seed(3)
        .generate();
    for b in 0..20u64 {
        traces.insert(generate_bot(&format!("bot{b}"), &BotSpec::default(), b));
    }
    let report = GeolocationPipeline::with_generic(GenericProfile::reference())
        .analyze(&traces)
        .expect("analyze");
    assert!(
        report.flat_removed() >= 15,
        "removed {}",
        report.flat_removed()
    );
    let mean = report.mixture().dominant().unwrap().mean;
    assert!((mean - 1.0).abs() <= 1.5, "mean {mean}");
}

#[test]
fn uncalibrated_dump_of_shifted_server_misplaces_the_crowd() {
    // Skipping calibration against a +6 h server displaces the crowd by
    // six zones — exactly why §V calibrates first. A +6 h display clock
    // moves the Italian evening peak (20 h UTC) to 02 h, which reads as a
    // crowd living at UTC−5: timestamps *later* ⇒ placed *west*.
    let spec = italian_spec(30).server_offset_secs(6 * 3_600);
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(40, 5);
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(5))
        .unwrap();
    let mut scraper = Scraper::new(network.connect(&address, 5).unwrap());
    let raw = scraper.dump().expect("dump");
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    let report = pipeline.analyze(&raw.utc_traces()).expect("analyze");
    let mean = report.mixture().dominant().unwrap().mean;
    assert!(
        (mean + 5.0).abs() <= 2.0,
        "expected misplacement near UTC-5, got {mean}"
    );
}

#[test]
fn hidden_timestamps_make_dump_useless_and_calibration_fail() {
    let spec = italian_spec(10).policy(TimestampPolicy::Hidden);
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(40, 6);
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(6))
        .unwrap();
    let mut scraper = Scraper::new(network.connect(&address, 6).unwrap());
    assert!(matches!(
        scraper.calibrate(crawl_clock()),
        Err(ForumError::TimestampsHidden)
    ));
    let dump = scraper.dump().expect("dump still crawls");
    assert_eq!(dump.server_traces().total_posts(), 0);
    // An empty trace set is a degenerate crowd.
    let result =
        GeolocationPipeline::with_generic(GenericProfile::reference()).analyze(&dump.utc_traces());
    assert!(matches!(result, Err(CoreError::EmptyCrowd)));
}

#[test]
fn takedown_mid_session_surfaces_service_unavailable() {
    let spec = italian_spec(5);
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(40, 7);
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(7))
        .unwrap();
    network.take_down(&address);
    match network.connect(&address, 1) {
        Err(TorError::UnknownService { .. }) => {}
        other => panic!("expected UnknownService, got {other:?}"),
    }
}

#[test]
fn tiny_tor_network_cannot_build_circuits() {
    let mut network = TorNetwork::with_relays(2, 8);
    let spec = italian_spec(3);
    let forum = SimulatedForum::generate(&spec);
    let result = network.publish(ForumHost::new(forum).into_hidden_service(8));
    assert!(matches!(result, Err(TorError::NotEnoughRelays { .. })));
}

#[test]
fn sub_threshold_crowd_is_empty() {
    // Users with almost no posts never reach the 30-post threshold.
    let db = RegionDb::table1();
    let traces = PopulationSpec::new(db.require(&"italy".into()).unwrap().clone())
        .users(20)
        .posts_per_day(0.01)
        .seed(4)
        .generate();
    let result = GeolocationPipeline::with_generic(GenericProfile::reference()).analyze(&traces);
    assert!(matches!(result, Err(CoreError::EmptyCrowd)));
}

#[test]
fn random_delay_of_hours_degrades_but_never_crashes() {
    for delay in [3_600u32, 6 * 3_600, 12 * 3_600] {
        let spec = italian_spec(25).policy(TimestampPolicy::DelayedUniform {
            max_delay_secs: delay,
        });
        let forum = SimulatedForum::generate(&spec);
        let mut network = TorNetwork::with_relays(40, u64::from(delay));
        let address = network
            .publish(ForumHost::new(forum).into_hidden_service(9))
            .unwrap();
        let mut scraper = Scraper::new(network.connect(&address, 9).unwrap());
        let scrape = scraper.calibrated_dump(crawl_clock()).expect("scrape");
        let report = GeolocationPipeline::with_generic(GenericProfile::reference())
            .analyze(&scrape.utc_traces())
            .expect("analyze");
        assert!(report.users_classified() > 0);
    }
}

/// Chaos knobs for CI: `CHAOS_SEED` picks the fault-plan seed and
/// `CHAOS_RATE_PCT` the highest per-request fault rate the sweep reaches
/// (both default when unset, so local runs need no setup).
fn chaos_env(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Publishes an Italian forum on a chaotic network and returns a scraper
/// with the default (retrying) policy.
fn chaotic_scraper(rate: f64, seed: u64) -> Scraper {
    let forum = SimulatedForum::generate(&italian_spec(30));
    let mut network = TorNetwork::with_relays(40, seed);
    network.set_fault_plan(FaultPlan::new(seed, FaultRates::mixed(rate)));
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(seed))
        .unwrap();
    Scraper::new(network.connect(&address, seed).unwrap())
}

#[test]
fn chaos_sweep_retrying_scraper_still_geolocates() {
    // Mixed collapse + churn + timeout + truncation + corruption +
    // hiccups at per-request rates up to 20% (or CHAOS_RATE_PCT): the
    // retrying scraper must complete every dump without a panic and the
    // pipeline must still place the Italian crowd within ±2 h of UTC+1.
    let seed = chaos_env("CHAOS_SEED", 11);
    let max_pct = chaos_env("CHAOS_RATE_PCT", 20).min(100);
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    for pct in [5, 10, max_pct] {
        let rate = pct as f64 / 100.0;
        let mut scraper = chaotic_scraper(rate, seed);
        let scrape = scraper.calibrated_dump(crawl_clock()).expect("dump");
        assert_eq!(scrape.coverage(), 1.0, "incomplete at {pct}%");
        if pct > 0 {
            assert!(
                scrape.stats().faults_absorbed > 0,
                "no faults absorbed at {pct}%"
            );
        }
        let report = pipeline.analyze(&scrape.utc_traces()).expect("analyze");
        let mean = report.mixture().dominant().unwrap().mean;
        assert!(
            (mean - 1.0).abs() <= 2.0,
            "at {pct}% faults the crowd landed at {mean}, expected ~UTC+1"
        );
    }
}

#[test]
fn interrupted_crawl_resumes_and_analysis_reflects_coverage() {
    // Reference: the same forum crawled over a fault-free network.
    let forum = SimulatedForum::generate(&italian_spec(30));
    let mut clean_net = TorNetwork::with_relays(40, 3);
    let clean_addr = clean_net
        .publish(ForumHost::new(forum.clone()).into_hidden_service(3))
        .unwrap();
    let reference = Scraper::new(clean_net.connect(&clean_addr, 3).unwrap())
        .dump()
        .expect("clean dump");

    // Chaos run with a nearly-exhausted retry budget: two faults in a row
    // (common at a 30% mixed rate) interrupt the crawl and we resume from
    // the checkpoint, as a restarted crawler would. One retry is kept so a
    // collapsed circuit can be rebuilt — with none, a broken channel could
    // never recover and the crawl would wedge.
    let mut network = TorNetwork::with_relays(40, 3);
    network.set_fault_plan(FaultPlan::new(
        chaos_env("CHAOS_SEED", 11),
        FaultRates::mixed(0.3),
    ));
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(3))
        .unwrap();
    let tight = RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 1,
        max_backoff_ms: 1,
        jitter_seed: 7,
    };
    let mut scraper = Scraper::new(network.connect(&address, 3).unwrap()).retry_policy(tight);
    let mut checkpoint = CrawlCheckpoint::start();
    let mut best_partial: Option<ScrapeReport> = None;
    let mut interruptions = 0u32;
    let resumed = loop {
        match scraper.resume_dump(checkpoint) {
            Ok(report) => break report,
            Err(interrupted) => {
                interruptions += 1;
                assert!(interruptions <= 50_000, "crawl makes no progress");
                if interrupted.checkpoint.threads_total() > 0
                    && !interrupted.checkpoint.is_complete()
                {
                    best_partial = Some(interrupted.checkpoint.partial_report());
                }
                checkpoint = interrupted.checkpoint;
            }
        }
    };
    assert!(
        interruptions > 0,
        "30% faults never interrupted a fail-fast crawl"
    );

    // Deterministic resume: identical traces, nothing lost or duplicated.
    assert_eq!(resumed.server_traces(), reference.server_traces());
    assert_eq!(resumed.posts_seen(), reference.posts_seen());
    assert_eq!(resumed.coverage(), 1.0);

    // The pipeline accepts the partial dump and carries its coverage
    // instead of pretending the dump was complete.
    let partial = best_partial.expect("no mid-crawl checkpoint captured");
    assert!(partial.coverage() < 1.0);
    let pipeline = GeolocationPipeline::with_generic(GenericProfile::reference());
    let report = pipeline
        .analyze_partial(&partial.utc_traces(), partial.coverage())
        .expect("partial analysis");
    assert!(report.is_partial());
    assert_eq!(report.coverage(), partial.coverage());
    assert!(report.render().contains("partial dump"));
}

#[test]
fn monitor_mode_defeats_hidden_timestamps() {
    let spec = italian_spec(25).policy(TimestampPolicy::Hidden);
    let forum = SimulatedForum::generate(&spec);
    let mut network = TorNetwork::with_relays(40, 10);
    let address = network
        .publish(ForumHost::new(forum).into_hidden_service(10))
        .unwrap();
    let mut monitor = Scraper::new(network.connect(&address, 10).unwrap()).into_monitor();
    let from = Timestamp::from_civil_utc(CivilDateTime::new(2016, 1, 1, 0, 0, 0).unwrap());
    let to = Timestamp::from_civil_utc(CivilDateTime::new(2017, 1, 1, 0, 0, 0).unwrap());
    let observed = monitor.run(from, to, 3_600).expect("monitor");
    let report = GeolocationPipeline::with_generic(GenericProfile::reference())
        .analyze(&observed)
        .expect("analyze");
    let mean = report.mixture().dominant().unwrap().mean;
    assert!((mean - 1.0).abs() <= 2.0, "mean {mean}");
}
