//! Black-box integration for `crowdtz-serve` (ISSUE 9): concurrent HTTP
//! clients, multiple tenants, both grids, with and without durability —
//! and the one invariant that matters: the snapshot body that comes back
//! over the wire is **byte-identical** to what an in-process
//! [`ConcurrentStreamingPipeline`] publishes after ingesting the same
//! deltas.
//!
//! Every test runs the same shape: start a server on an ephemeral
//! loopback port, create two tenants on different grids over HTTP, fan
//! the workload out over N client threads (each with its own persistent
//! connection, hence its own per-tenant `IngestWriter` on the server),
//! interleave their batches across both tenants, then publish and
//! compare raw bytes. The engine's determinism guarantee — deltas
//! commute — is what makes the comparison exact for any interleaving
//! the threads produce.

use std::path::PathBuf;
use std::sync::Arc;

use crowdtz::core::{ConcurrentStreamingPipeline, GeolocationPipeline, ZoneGrid};
use crowdtz::serve::{serve, HttpClient, ServeConfig, ServerHandle, ServiceConfig};
use crowdtz::time::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

const USERS_PER_TENANT: usize = 60;
const POSTS_PER_USER: usize = 15;
const MIN_POSTS: usize = 8;
const BATCH_USERS: usize = 10;

/// The two tenants every test creates: name, grid label, grid.
const TENANTS: &[(&str, &str, ZoneGrid)] = &[
    ("midnight-market", "hourly", ZoneGrid::Hourly),
    ("onion-forum", "quarter-hour", ZoneGrid::QuarterHour),
];

/// Per-tenant workload: `(tenant name, [(user, posts)])`.
type TenantWorkload = (String, Vec<(String, Vec<Timestamp>)>);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crowdtz-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic two-region workload (70% UTC+1, 30% UTC+9), seeded per
/// tenant so the two tenants hold different crowds.
fn synthesize(seed: u64) -> Vec<(String, Vec<Timestamp>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..USERS_PER_TENANT)
        .map(|i| {
            let home_hour: i64 = if i % 10 < 7 { 20 } else { 12 };
            let posts: Vec<Timestamp> = (0..POSTS_PER_USER)
                .map(|p| {
                    let jitter: i64 = rng.gen_range(-2..=2);
                    let hour = (home_hour + jitter).rem_euclid(24);
                    Timestamp::from_secs((p as i64) * 86_400 + hour * 3_600 + (i as i64))
                })
                .collect();
            (format!("u{i:04}"), posts)
        })
        .collect()
}

fn batch_body(chunk: &[(String, Vec<Timestamp>)]) -> serde_json::Value {
    let entries: Vec<serde_json::Value> = chunk
        .iter()
        .map(|(user, posts)| {
            let secs: Vec<i64> = posts.iter().map(|t| t.as_secs()).collect();
            json!({"user": user, "posts": secs})
        })
        .collect();
    json!({ "deltas": entries })
}

/// The reference bytes: one in-process engine, one writer, same deltas.
fn in_process_reference(grid: ZoneGrid, deltas: &[(String, Vec<Timestamp>)]) -> Vec<u8> {
    let engine = ConcurrentStreamingPipeline::new(
        GeolocationPipeline::default()
            .min_posts(MIN_POSTS)
            .shards(4)
            .grid(grid),
    );
    let writer = engine.writer();
    for (user, posts) in deltas {
        writer.ingest(user, posts).expect("reference ingest");
    }
    let published = engine.publish().expect("reference publish");
    serde_json::to_vec(published.report()).expect("serialize reference")
}

fn start_server(durable_root: Option<PathBuf>) -> ServerHandle {
    let config = ServeConfig {
        workers: 4,
        service: ServiceConfig {
            durable_root,
            crash_after_batches: None,
        },
        ..ServeConfig::default()
    };
    serve(config, None).expect("bind loopback")
}

fn create_tenants(handle: &ServerHandle, durable: bool) {
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    for (name, grid, _) in TENANTS {
        let created = client
            .post_json(
                &format!("/v1/tenants/{name}"),
                &json!({
                    "grid": *grid,
                    "min_posts": MIN_POSTS,
                    "shards": 4,
                    "durable": durable,
                }),
            )
            .expect("create tenant");
        assert_eq!(created.status, 201, "create {name}");
        let body = created.json().expect("create body");
        assert_eq!(
            body.field("durable").unwrap(),
            &json!(durable),
            "durable flag for {name}"
        );
    }
}

/// Fans the per-tenant batch lists out over `clients` threads. Each
/// thread owns one connection and posts its share of batches to *both*
/// tenants, interleaved, so server-side writers see mixed traffic.
fn ingest_concurrently(handle: &ServerHandle, clients: usize, workloads: &[TenantWorkload]) {
    let addr = handle.addr();
    let workloads = Arc::new(
        workloads
            .iter()
            .map(|(name, deltas)| {
                let batches: Vec<serde_json::Value> =
                    deltas.chunks(BATCH_USERS).map(batch_body).collect();
                (name.clone(), batches)
            })
            .collect::<Vec<_>>(),
    );
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let workloads = Arc::clone(&workloads);
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("client connect");
                let mut applied = 0u64;
                let batch_count = workloads.iter().map(|(_, b)| b.len()).max().unwrap_or(0);
                for batch_idx in (client_idx..batch_count).step_by(clients) {
                    // Interleave: this batch index to every tenant that
                    // has it, back to back on the same connection.
                    for (name, batches) in workloads.iter() {
                        let Some(body) = batches.get(batch_idx) else {
                            continue;
                        };
                        let response = client
                            .post_json(&format!("/v1/tenants/{name}/ingest"), body)
                            .expect("ingest request");
                        assert_eq!(response.status, 200, "ingest into {name}");
                        let reply = response.json().expect("ingest reply");
                        let watermark = reply.field("watermark").unwrap().as_u64().unwrap();
                        assert!(
                            watermark > 0,
                            "writer watermark must advance on every batch"
                        );
                        applied += 1;
                    }
                }
                applied
            });
        }
    });
}

/// Publishes each tenant over HTTP and pins the body bytes against the
/// in-process reference; re-reads from the published cell to prove the
/// wait-free path serves the same Arc.
fn assert_snapshots_match(handle: &ServerHandle, workloads: &[TenantWorkload], clients: usize) {
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    for ((name, deltas), (_, _, grid)) in workloads.iter().zip(TENANTS) {
        let published = client
            .get(&format!("/v1/tenants/{name}/snapshot?publish=1"))
            .expect("publish snapshot");
        assert_eq!(published.status, 200, "publish {name}");
        let expected = in_process_reference(*grid, deltas);
        assert_eq!(
            published.body, expected,
            "HTTP snapshot of {name} diverged from the in-process engine"
        );
        assert_eq!(
            published.header("x-crowdtz-posts"),
            Some((deltas.len() * POSTS_PER_USER).to_string().as_str()),
            "post count at the cut for {name}"
        );
        // One writer per ingesting connection, plus tenant-creation and
        // snapshot connections that never wrote.
        let watermarks: Vec<u64> = published
            .header("x-crowdtz-watermarks")
            .expect("watermark header")
            .split(',')
            .map(|w| w.parse().unwrap())
            .collect();
        let writers_used = watermarks.iter().filter(|&&w| w > 0).count();
        assert_eq!(
            writers_used,
            clients.min(deltas.chunks(BATCH_USERS).len()),
            "every ingesting connection shows as one watermark for {name}"
        );

        let replay = client
            .get(&format!("/v1/tenants/{name}/snapshot"))
            .expect("cached snapshot");
        assert_eq!(replay.status, 200);
        assert_eq!(
            replay.body, published.body,
            "wait-free read of {name} returned different bytes"
        );
        assert_eq!(
            replay.header("x-crowdtz-epoch"),
            published.header("x-crowdtz-epoch"),
            "cached read must serve the same epoch"
        );
    }
}

fn exercise(clients: usize, durable: bool, tag: &str) {
    let durable_root = durable.then(|| tmp_dir(tag));
    let handle = start_server(durable_root.clone());
    create_tenants(&handle, durable);
    let workloads: Vec<TenantWorkload> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| ((*name).to_string(), synthesize(1000 + i as u64)))
        .collect();
    ingest_concurrently(&handle, clients, &workloads);
    assert_snapshots_match(&handle, &workloads, clients);
    let checkpointed = handle.shutdown().expect("shutdown");
    if durable {
        assert_eq!(checkpointed, TENANTS.len(), "both tenants checkpointed");
        let root = durable_root.unwrap();
        for (name, _, _) in TENANTS {
            assert!(
                root.join(name).is_dir(),
                "durable tenant {name} journals under its own directory"
            );
        }
        let _ = std::fs::remove_dir_all(root);
    } else {
        assert_eq!(checkpointed, 0, "nothing durable to checkpoint");
    }
}

#[test]
fn two_clients_two_tenants_both_grids() {
    exercise(2, false, "2c");
}

#[test]
fn four_clients_two_tenants_both_grids() {
    exercise(4, false, "4c");
}

#[test]
fn two_clients_durable_tenants() {
    exercise(2, true, "2c-durable");
}

#[test]
fn four_clients_durable_tenants() {
    exercise(4, true, "4c-durable");
}

/// A windowed tenant over a real socket (ISSUE 10): ingest a migrating
/// crowd round by round, retract over HTTP, publish through the sliding
/// window, and read the drift trajectory back — the snapshot bytes pin
/// against an in-process [`WindowedPipeline`] driven identically, and
/// the trajectory flags the migration within one bucket of the truth.
#[test]
fn windowed_tenant_tracks_a_migration_over_the_wire() {
    use crowdtz::core::{WindowConfig, WindowedPipeline};
    use crowdtz::synth::MigrationSpec;
    use crowdtz::time::RegionDb;

    let db = RegionDb::extended();
    let spec = MigrationSpec::new(
        db.get(&"new-york".into()).unwrap().clone(),
        db.get(&"china".into()).unwrap().clone(),
    )
    .users(24)
    .rounds(8)
    .switch_round(4)
    .round_days(7)
    .seed(11)
    .posts_per_day(3.0);

    // The last round's posts by the first user — retracted over HTTP
    // before the final publish, and from the reference identically.
    let retract: Vec<(String, Vec<Timestamp>)> = {
        let posts: Vec<Timestamp> = spec
            .round_posts(spec.round_count() - 1)
            .into_iter()
            .filter(|(user, _)| user == "mig-u0")
            .map(|(_, ts)| ts)
            .collect();
        assert!(!posts.is_empty(), "fixture user posted in the last round");
        vec![("mig-u0".to_owned(), posts)]
    };
    let grouped = |round: usize| -> Vec<(String, Vec<Timestamp>)> {
        let mut by_user: Vec<(String, Vec<Timestamp>)> = Vec::new();
        for (user, ts) in spec.round_posts(round) {
            match by_user.iter_mut().find(|(u, _)| *u == user) {
                Some((_, posts)) => posts.push(ts),
                None => by_user.push((user, vec![ts])),
            }
        }
        by_user
    };

    let handle = start_server(None);
    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    let created = client
        .post_json(
            "/v1/tenants/migrating-market",
            &json!({
                "min_posts": 1,
                "threads": 2,
                "window": json!({
                    "bucket_secs": spec.round_secs(),
                    "window_buckets": 2,
                    "drift_threshold": 1.2,
                    "drift_history": 3,
                }),
            }),
        )
        .expect("create windowed tenant");
    assert_eq!(created.status, 201);
    assert_eq!(
        created.json().unwrap().field("windowed").unwrap(),
        &json!(true),
        "creation reports the window"
    );

    // The in-process twin, driven through the same sequence of calls.
    let reference = WindowedPipeline::new(
        ConcurrentStreamingPipeline::new(GeolocationPipeline::default().min_posts(1).threads(2)),
        WindowConfig {
            bucket_secs: spec.round_secs(),
            window_buckets: 2,
            drift_threshold: 1.2,
            drift_history: 3,
        },
        None,
    );
    let ref_writer = reference.engine().writer();

    let mut last_http_body = Vec::new();
    for round in 0..spec.round_count() {
        let batch = grouped(round);
        let response = client
            .post_json("/v1/tenants/migrating-market/ingest", &batch_body(&batch))
            .expect("ingest round");
        assert_eq!(response.status, 200, "ingest round {round}");
        let flat: Vec<(&str, Timestamp)> = batch
            .iter()
            .flat_map(|(user, posts)| posts.iter().map(move |&ts| (user.as_str(), ts)))
            .collect();
        reference.ingest_posts(&ref_writer, &flat).unwrap();

        if round == spec.round_count() - 1 {
            let retracted = client
                .post_json(
                    "/v1/tenants/migrating-market/retract",
                    &batch_body(&retract),
                )
                .expect("retract over the wire");
            assert_eq!(retracted.status, 200);
            assert_eq!(
                retracted
                    .json()
                    .unwrap()
                    .field("posts")
                    .unwrap()
                    .as_u64()
                    .unwrap(),
                retract[0].1.len() as u64,
                "every retraction target was live"
            );
            let flat: Vec<(&str, Timestamp)> = retract
                .iter()
                .flat_map(|(user, posts)| posts.iter().map(move |&ts| (user.as_str(), ts)))
                .collect();
            reference.retract_posts(&ref_writer, &flat).unwrap();
        }

        let published = client
            .get("/v1/tenants/migrating-market/snapshot?publish=1")
            .expect("publish round");
        assert_eq!(published.status, 200, "publish round {round}");
        last_http_body = published.body;
        reference.publish().unwrap();
    }
    assert_eq!(
        last_http_body,
        serde_json::to_vec(reference.engine().snapshot().unwrap().report()).unwrap(),
        "windowed snapshot over the wire diverged from the in-process twin"
    );

    let drift = client
        .get("/v1/tenants/migrating-market/drift?trajectory=1")
        .expect("drift trajectory");
    assert_eq!(drift.status, 200);
    let body = drift.json().expect("trajectory body");
    assert_eq!(
        body.field("window_buckets").unwrap().as_u64().unwrap(),
        2,
        "window config echoed"
    );
    assert!(
        body.field("changepoints").unwrap().as_u64().unwrap() >= 1,
        "the migration must be flagged"
    );
    let rows = match body.field("trajectory").unwrap() {
        serde_json::Value::Array(rows) => rows,
        other => panic!("trajectory must be an array, got {other:?}"),
    };
    assert_eq!(rows.len(), spec.round_count(), "one point per publish");
    let truth = spec
        .round_start(spec.ground_truth_round())
        .days_since_epoch()
        * 86_400
        / spec.round_secs();
    let first_flagged = rows
        .iter()
        .find(|row| row.field("changepoint").unwrap() == &json!(true))
        .expect("a flagged trajectory row");
    let bucket = first_flagged.field("bucket").unwrap().as_i64().unwrap();
    assert!(
        (bucket - truth).abs() <= 1,
        "wire trajectory flagged bucket {bucket}, switch at {truth}"
    );
    drop(client);
    handle.shutdown().expect("shutdown");
}

/// A durable tenant warm-restarts: shut the server down, start a new
/// one over the same root, re-create the tenant, and the recovered
/// engine publishes the same bytes without any re-ingest.
#[test]
fn durable_tenant_warm_restarts_into_identical_bytes() {
    let root = tmp_dir("restart");
    let handle = start_server(Some(root.clone()));
    create_tenants(&handle, true);
    let workloads: Vec<TenantWorkload> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| ((*name).to_string(), synthesize(2000 + i as u64)))
        .collect();
    ingest_concurrently(&handle, 2, &workloads);

    let mut client = HttpClient::connect(handle.addr()).expect("connect");
    let mut first: Vec<Vec<u8>> = Vec::new();
    for (name, _) in &workloads {
        let published = client
            .get(&format!("/v1/tenants/{name}/snapshot?publish=1"))
            .expect("first publish");
        assert_eq!(published.status, 200);
        first.push(published.body);
    }
    drop(client);
    handle.shutdown().expect("first shutdown");

    let handle = start_server(Some(root.clone()));
    create_tenants(&handle, true); // same names: recovered, not empty
    let mut client = HttpClient::connect(handle.addr()).expect("reconnect");
    for ((name, _), before) in workloads.iter().zip(&first) {
        let published = client
            .get(&format!("/v1/tenants/{name}/snapshot?publish=1"))
            .expect("second publish");
        assert_eq!(published.status, 200, "publish {name} after restart");
        assert_eq!(
            &published.body, before,
            "warm-restarted {name} must publish identical bytes"
        );
    }
    drop(client);
    handle.shutdown().expect("second shutdown");
    let _ = std::fs::remove_dir_all(root);
}
